#ifndef FOOFAH_FUZZ_CAMPAIGN_H_
#define FOOFAH_FUZZ_CAMPAIGN_H_

#include <array>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "search/search.h"
#include "util/status.h"

namespace foofah {
namespace fuzz {

/// One fuzzing run end to end: generate `count` scenarios, self-check
/// each through the three oracles, shrink any failure to a minimal
/// repro, and (optionally) run the synthesizer on each task to collect
/// the per-operator solve-rate/latency statistics the ROADMAP's
/// learned-guidance priors will be mined from.
struct CampaignOptions {
  GeneratorOptions generator;
  int count = 200;
  OracleOptions oracle;
  /// Shrink failing scenarios to a 1-minimal repro before reporting.
  bool minimize = false;
  /// Wall-clock cap in ms, checked between scenarios; 0 disables. A
  /// budgeted run trades determinism of the corpus *size* for bounded CI
  /// time (each emitted scenario is still a pure function of its index),
  /// so determinism gates must use a plain --count run instead.
  int64_t budget_ms = 0;
  /// Run SynthesizeProgram on every generated task (solve-rate stats).
  bool synthesize = false;
  SearchOptions search;  ///< Budget for the optional synthesis runs.
  /// When false, scenarios that pass every oracle are not retained in
  /// CampaignResult::outcomes (failures always are). A long budgeted soak
  /// generates hundreds of thousands of scenarios; keeping them all alive
  /// just to say "clean" would defeat the soak. Must stay true when the
  /// outcomes feed SaveCampaignBundles.
  bool keep_passing_outcomes = true;
};

/// Frontier guard shared by every bounded search profile that must stay
/// deterministic: node/expansion budgets cap *expansions*, but a single
/// expansion of a wide state can keep thousands of children — a
/// fuzzer-generated wrapall/fold scenario fills GBs of frontier well
/// inside a small expansion budget. Capping generated (kept) states too
/// is a plain counter, identical at every thread count. Used by the
/// determinism suites' testing::WallClockFreeSearchOptions profile (NOT
/// by DefaultFuzzSearchOptions, whose 2 s wall clock already bounds the
/// frontier and whose solve baseline — FUZZ_report.json's 91/120 — was
/// established without a generated cap).
inline constexpr uint64_t kFuzzFrontierGuardMaxGenerated = 20'000;

/// A bounded default for CampaignOptions::search: wall-clock capped at
/// 2 s with an 8'000-expansion budget (the synthesis fuzz test's tuning —
/// enough for almost every 1-2 op task, cheap on adversarial reshapes).
SearchOptions DefaultFuzzSearchOptions();

struct ScenarioOutcome {
  GeneratedScenario scenario;
  OracleReport oracles;
  /// Set when the oracles failed and CampaignOptions::minimize was on.
  bool shrunk_available = false;
  GeneratedScenario shrunk;
  /// Synthesis statistics (synthesize == true only).
  bool synthesized = false;
  bool solved = false;
  double synth_ms = 0;
  uint64_t nodes_expanded = 0;
};

/// Per-operator aggregates over the scenarios whose ground truth uses the
/// operator. "solved / scenarios" is the operator's solve rate — the raw
/// prior for guidance: an operator the search rarely recovers is where
/// enumeration ordering has the most to gain.
struct OperatorFuzzStats {
  uint64_t occurrences = 0;  ///< Op instances across all truth programs.
  uint64_t scenarios = 0;    ///< Scenarios whose truth contains the op.
  uint64_t solved = 0;
  double synth_ms = 0;           ///< Summed over those scenarios.
  uint64_t nodes_expanded = 0;   ///< Summed over those scenarios.
};

struct CampaignResult {
  /// Retained outcomes; equal to the generated count unless
  /// keep_passing_outcomes was off.
  std::vector<ScenarioOutcome> outcomes;
  int generated = 0;        ///< Scenarios actually generated and checked.
  int oracle_failures = 0;  ///< Scenarios with >= 1 failing oracle.
  int synthesized = 0;
  int solved = 0;
  std::array<OperatorFuzzStats, kNumOpCodes> op_stats{};
  double elapsed_ms = 0;
  /// True when budget_ms stopped generation before `count` scenarios.
  bool budget_exhausted = false;
};

CampaignResult RunFuzzCampaign(const CampaignOptions& options);

/// Writes every generated scenario as a corpus-compatible task bundle
/// (scenarios/bundle.h) under `directory`/<scenario name>/ — the format
/// LoadGeneratedCorpus, the CLI, and the exported seed corpus all share.
/// Deterministic input produces byte-identical directories.
Status SaveCampaignBundles(const CampaignResult& result,
                           const std::string& directory);

/// Machine-readable campaign report (the FUZZ_report.json artifact):
/// campaign configuration, aggregate solve counts, and one entry per
/// operator that occurs in some truth program, in OpCode order.
std::string CampaignReportJson(const CampaignResult& result,
                               const CampaignOptions& options);

Status WriteCampaignReport(const CampaignResult& result,
                           const CampaignOptions& options,
                           const std::string& path);

}  // namespace fuzz
}  // namespace foofah

#endif  // FOOFAH_FUZZ_CAMPAIGN_H_
