#include "fuzz/generator.h"

#include <array>
#include <vector>

#include "ops/enumerate.h"
#include "ops/operators.h"

namespace foofah {
namespace fuzz {

namespace {

std::string Pad2(uint32_t v) {
  std::string s = std::to_string(v);
  return v < 10 ? "0" + s : s;
}

/// Value archetypes a column can be typed with. Most are structurally
/// uniform (one token-run class sequence), so ProfileColumn infers a
/// structure and the synthesizer can counter with inferred Extract
/// patterns; kPunct is deliberately CSV-hostile to keep the bundle and
/// streaming round-trips honest.
enum class ColumnKind {
  kWord = 0,
  kDigits,
  kDate,
  kTime,
  kDelimited,
  kCode,
  kUnicode,
  kPunct,
};
constexpr int kNumColumnKinds = 8;

std::string RandomCell(Lcg* rng, ColumnKind kind) {
  static const char* kWords[] = {"ada",    "vint",  "tim",    "grace",
                                 "alan",   "edsger", "barbara", "ken",
                                 "dennis", "leslie"};
  static const char* kUnicodeValues[] = {"héllo", "東京",  "naïve",
                                         "αβγ",   "ok✓", "café"};
  static const char* kPunctValues[] = {"a,b",      "say \"hi\"", "x;y",
                                       "one two",  "l1\nl2",     "'q'",
                                       "tr|ail, ", "\"\""};
  switch (kind) {
    case ColumnKind::kWord:
      return kWords[rng->Next(10)];
    case ColumnKind::kDigits:
      return std::to_string(rng->Next(10'000));
    case ColumnKind::kDate:
      return std::to_string(2020 + rng->Next(6)) + "-" +
             Pad2(1 + rng->Next(12)) + "-" + Pad2(1 + rng->Next(28));
    case ColumnKind::kTime:
      return std::to_string(1 + rng->Next(12)) + ":" + Pad2(rng->Next(60));
    case ColumnKind::kDelimited:
      return std::string(kWords[rng->Next(10)]) + ":" + kWords[rng->Next(10)];
    case ColumnKind::kCode:
      return std::string(1, static_cast<char>('a' + rng->Next(26))) +
             std::to_string(rng->Next(100));
    case ColumnKind::kUnicode:
      return kUnicodeValues[rng->Next(6)];
    case ColumnKind::kPunct:
      return kPunctValues[rng->Next(8)];
  }
  return "";
}

/// Samples one in-domain operation for `current`, stratified by operator:
/// first pick an enabled OpCode that has at least one candidate
/// parameterization, then pick uniformly within that operator's
/// candidates. Uniform-over-candidates would drown the corpus in
/// Move/Merge pairs (their candidate counts grow quadratically with
/// width); stratifying keeps per-operator coverage healthy, which is what
/// the solve-rate statistics and the learned-guidance priors need.
/// Returns false when the state admits no candidate at all.
bool SampleOperation(const Table& current, const OperatorRegistry& registry,
                     Lcg* rng, Operation* out) {
  std::vector<Operation> candidates =
      EnumerateCandidates(current, current, registry);
  if (candidates.empty()) return false;

  // Bucket candidate indexes by opcode, in OpCode order (deterministic).
  std::array<std::vector<size_t>, kNumOpCodes> by_op;
  for (size_t i = 0; i < candidates.size(); ++i) {
    by_op[static_cast<int>(candidates[i].op)].push_back(i);
  }
  std::vector<int> present;
  for (int code = 0; code < kNumOpCodes; ++code) {
    if (!by_op[code].empty()) present.push_back(code);
  }
  const std::vector<size_t>& bucket =
      by_op[present[rng->Next(static_cast<uint32_t>(present.size()))]];
  *out = candidates[bucket[rng->Next(static_cast<uint32_t>(bucket.size()))]];
  return true;
}

/// Walks a random in-domain chain forward from `input`, rejecting steps
/// that blow past the size caps or produce an empty relation. Each step
/// gets a few rejection retries before the chain stops early.
Program SampleProgram(const Table& input, const OperatorRegistry& registry,
                      const GeneratorOptions& options, Lcg* rng,
                      Table* final_output) {
  Program program;
  Table current = input;
  const int target_ops =
      1 + static_cast<int>(rng->Next(static_cast<uint32_t>(
              options.max_ops < 1 ? 1 : options.max_ops)));
  for (int step = 0; step < target_ops; ++step) {
    bool advanced = false;
    for (int attempt = 0; attempt < 6 && !advanced; ++attempt) {
      Operation op;
      if (!SampleOperation(current, registry, rng, &op)) break;
      Result<Table> next = ApplyOperation(current, op);
      if (!next.ok()) continue;
      if (next->num_cells() > options.max_cells || next->num_rows() == 0 ||
          next->num_cols() == 0) {
        continue;
      }
      current = std::move(next).value();
      program.Append(op);
      advanced = true;
    }
    if (!advanced) break;
  }
  *final_output = std::move(current);
  return program;
}

}  // namespace

Table RandomTypedTable(Lcg* rng, const GeneratorOptions& options) {
  const int rows =
      options.min_rows +
      static_cast<int>(rng->Next(static_cast<uint32_t>(
          options.max_rows - options.min_rows + 1)));
  const int cols =
      options.min_cols +
      static_cast<int>(rng->Next(static_cast<uint32_t>(
          options.max_cols - options.min_cols + 1)));

  std::vector<ColumnKind> kinds;
  std::vector<bool> holes;
  kinds.reserve(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    kinds.push_back(static_cast<ColumnKind>(rng->Next(kNumColumnKinds)));
    holes.push_back(rng->Chance(options.hole_percent));
  }
  const bool ragged = rng->Chance(options.ragged_percent);

  Table t;
  for (int r = 0; r < rows; ++r) {
    // Ragged tables store some rows short (1..cols cells); the logical
    // rectangle still reads "" past the stored end.
    const int stored =
        ragged && rng->Chance(40) ? 1 + static_cast<int>(rng->Next(
                                            static_cast<uint32_t>(cols)))
                                  : cols;
    Table::Row row;
    row.reserve(static_cast<size_t>(stored));
    for (int c = 0; c < stored; ++c) {
      if (holes[static_cast<size_t>(c)] && rng->Chance(25)) {
        row.push_back("");
      } else {
        row.push_back(RandomCell(rng, kinds[static_cast<size_t>(c)]));
      }
    }
    t.AppendRow(std::move(row));
  }
  return t;
}

ScenarioGenerator::ScenarioGenerator(GeneratorOptions options)
    : options_(options),
      registry_(options.registry != nullptr
                    ? *options.registry
                    : OperatorRegistry::WithExtensions()) {
  // The registry is copied so a generator (and every scenario it emits)
  // stays valid after the caller's registry goes away.
  options_.registry = nullptr;
}

GeneratedScenario ScenarioGenerator::Generate(int index) const {
  GeneratedScenario scenario;
  scenario.scenario_seed = options_.seed * 0x9E3779B97F4A7C15ULL +
                           static_cast<uint64_t>(index) * 0x85EBCA77C2B2AE63ULL;
  std::string padded = std::to_string(index);
  while (padded.size() < 4) padded.insert(padded.begin(), '0');
  scenario.name =
      "fuzz_s" + std::to_string(options_.seed) + "_" + padded;

  // A sampled chain can collapse to the identity (Move there and back,
  // Fill over no holes). Identity pairs are worthless synthesis tasks, so
  // redraw a few times from the same deterministic stream before giving
  // up and accepting whatever the last draw produced.
  Lcg rng(scenario.scenario_seed);
  for (int attempt = 0; attempt < 4; ++attempt) {
    scenario.input = RandomTypedTable(&rng, options_);
    scenario.program = SampleProgram(scenario.input, registry_, options_, &rng,
                                     &scenario.output);
    if (!scenario.program.empty() &&
        !scenario.input.ContentEquals(scenario.output)) {
      break;
    }
  }
  return scenario;
}

}  // namespace fuzz
}  // namespace foofah
