#include "fuzz/campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>

#include "fuzz/shrink.h"
#include "scenarios/bundle.h"

namespace foofah {
namespace fuzz {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void AppendJsonNumber(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  *out += buffer;
}

}  // namespace

SearchOptions DefaultFuzzSearchOptions() {
  SearchOptions options;
  options.timeout_ms = 2'000;
  options.max_expansions = 8'000;
  return options;
}

CampaignResult RunFuzzCampaign(const CampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ScenarioGenerator generator(options.generator);
  CampaignResult result;
  // A budgeted soak passes an effectively-unbounded count; cap the
  // up-front reservation so it doesn't allocate for scenarios the budget
  // will never reach.
  result.outcomes.reserve(
      std::min<size_t>(static_cast<size_t>(options.count), 1024));

  for (int index = 0; index < options.count; ++index) {
    if (options.budget_ms > 0 &&
        MsSince(start) >= static_cast<double>(options.budget_ms)) {
      result.budget_exhausted = true;
      break;
    }
    ScenarioOutcome outcome;
    outcome.scenario = generator.Generate(index);
    outcome.oracles = CheckScenario(outcome.scenario, options.oracle);
    if (!outcome.oracles.ok()) {
      ++result.oracle_failures;
      if (options.minimize) {
        outcome.shrunk = ShrinkScenario(outcome.scenario, options.oracle);
        outcome.shrunk_available = true;
      }
    }

    if (options.synthesize) {
      SearchResult search = SynthesizeProgram(
          outcome.scenario.input, outcome.scenario.output, options.search);
      outcome.synthesized = true;
      outcome.solved = search.found;
      outcome.synth_ms = search.stats.elapsed_ms;
      outcome.nodes_expanded = search.stats.nodes_expanded;
      ++result.synthesized;
      if (search.found) ++result.solved;
    }

    std::set<OpCode> distinct;
    for (const Operation& op : outcome.scenario.program.operations()) {
      ++result.op_stats[static_cast<int>(op.op)].occurrences;
      distinct.insert(op.op);
    }
    for (OpCode code : distinct) {
      OperatorFuzzStats& stats = result.op_stats[static_cast<int>(code)];
      ++stats.scenarios;
      if (outcome.solved) ++stats.solved;
      stats.synth_ms += outcome.synth_ms;
      stats.nodes_expanded += outcome.nodes_expanded;
    }
    ++result.generated;
    if (options.keep_passing_outcomes || !outcome.oracles.ok()) {
      result.outcomes.push_back(std::move(outcome));
    }
  }
  result.elapsed_ms = MsSince(start);
  return result;
}

Status SaveCampaignBundles(const CampaignResult& result,
                           const std::string& directory) {
  for (const ScenarioOutcome& outcome : result.outcomes) {
    TaskBundle bundle;
    bundle.name = outcome.scenario.name;
    bundle.raw = outcome.scenario.input;
    bundle.target = outcome.scenario.output;
    bundle.truth = outcome.scenario.program;
    Status s = SaveTaskBundle(bundle, directory + "/" + outcome.scenario.name);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::string CampaignReportJson(const CampaignResult& result,
                               const CampaignOptions& options) {
  std::string out;
  out += "{\n";
  out += "  \"seed\": " + std::to_string(options.generator.seed) + ",\n";
  out += "  \"requested_count\": " + std::to_string(options.count) + ",\n";
  out += "  \"generated\": " + std::to_string(result.generated) + ",\n";
  out += "  \"max_ops\": " + std::to_string(options.generator.max_ops) + ",\n";
  out += "  \"oracle_failures\": " + std::to_string(result.oracle_failures) +
         ",\n";
  out += "  \"budget_exhausted\": ";
  out += result.budget_exhausted ? "true" : "false";
  out += ",\n";
  out += "  \"elapsed_ms\": ";
  AppendJsonNumber(&out, result.elapsed_ms);
  out += ",\n";
  out += "  \"synthesized\": " + std::to_string(result.synthesized) + ",\n";
  out += "  \"solved\": " + std::to_string(result.solved) + ",\n";
  out += "  \"operators\": [\n";
  bool first = true;
  for (int code = 0; code < kNumOpCodes; ++code) {
    const OperatorFuzzStats& stats = result.op_stats[code];
    if (stats.occurrences == 0) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"op\": \"";
    out += OpCodeName(static_cast<OpCode>(code));
    out += "\", \"occurrences\": " + std::to_string(stats.occurrences);
    out += ", \"scenarios\": " + std::to_string(stats.scenarios);
    if (result.synthesized > 0) {
      out += ", \"solved\": " + std::to_string(stats.solved);
      out += ", \"solve_rate\": ";
      AppendJsonNumber(&out, stats.scenarios == 0
                                 ? 0.0
                                 : static_cast<double>(stats.solved) /
                                       static_cast<double>(stats.scenarios));
      out += ", \"mean_synth_ms\": ";
      AppendJsonNumber(&out, stats.scenarios == 0
                                 ? 0.0
                                 : stats.synth_ms /
                                       static_cast<double>(stats.scenarios));
      out += ", \"mean_nodes_expanded\": ";
      AppendJsonNumber(&out,
                       stats.scenarios == 0
                           ? 0.0
                           : static_cast<double>(stats.nodes_expanded) /
                                 static_cast<double>(stats.scenarios));
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

Status WriteCampaignReport(const CampaignResult& result,
                           const CampaignOptions& options,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << CampaignReportJson(result, options);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace fuzz
}  // namespace foofah
