#include "fuzz/oracle.h"

#include "exec/runner.h"
#include "program/parser.h"
#include "table/csv.h"

namespace foofah {
namespace fuzz {

namespace {

void CheckReplay(const GeneratedScenario& scenario, OracleReport* report) {
  Result<Table> replay = scenario.program.Execute(scenario.input);
  if (!replay.ok()) {
    report->failures.push_back(
        {OracleKind::kReplay,
         "ground-truth program no longer executes on its own input: " +
             replay.status().ToString()});
    return;
  }
  const std::string got = ToCsv(*replay);
  const std::string want = ToCsv(scenario.output);
  if (got != want) {
    report->failures.push_back(
        {OracleKind::kReplay,
         "replay diverged from recorded output\n-- replay:\n" + got +
             "-- recorded:\n" + want});
  }
}

void CheckStreaming(const GeneratedScenario& scenario,
                    const OracleOptions& options, OracleReport* report) {
  const std::string input_bytes = ToCsv(scenario.input);

  // The reference: whole-file parse + Table executor + serialize. Both
  // sides start from the same bytes, so a CSV normalization of the
  // in-memory table (e.g. a zero-cell row reading back as [""]) cannot
  // masquerade as an executor divergence.
  std::string expected;
  Status expected_failure = Status::OK();
  Result<Table> parsed = ParseCsv(input_bytes);
  if (!parsed.ok()) {
    expected_failure = parsed.status();
  } else {
    Result<Table> out = scenario.program.Execute(*parsed);
    if (!out.ok()) {
      expected_failure = out.status();
    } else {
      expected = ToCsv(*out);
    }
  }

  for (size_t chunk_rows : options.chunk_sizes) {
    exec::ApplyOptions apply;
    apply.chunk_rows = chunk_rows;
    std::string output;
    Result<exec::ApplyStats> stats = exec::ApplyProgramToCsvText(
        scenario.program, input_bytes, &output, apply);
    const std::string context =
        "chunk_rows=" + std::to_string(chunk_rows) + ": ";
    if (!expected_failure.ok()) {
      if (stats.ok()) {
        report->failures.push_back(
            {OracleKind::kStreaming,
             context + "streaming succeeded where the Table executor fails "
                       "with " +
                 expected_failure.ToString()});
      } else if (stats.status().code() != expected_failure.code() ||
                 stats.status().message() != expected_failure.message()) {
        report->failures.push_back(
            {OracleKind::kStreaming,
             context + "status diverged: streaming " +
                 stats.status().ToString() + " vs table " +
                 expected_failure.ToString()});
      }
      continue;
    }
    if (!stats.ok()) {
      report->failures.push_back(
          {OracleKind::kStreaming,
           context + "streaming failed where the Table executor succeeds: " +
               stats.status().ToString()});
      continue;
    }
    if (output != expected) {
      report->failures.push_back(
          {OracleKind::kStreaming,
           context + "output bytes diverged\n-- streaming:\n" + output +
               "-- table executor:\n" + expected});
    }
  }
}

void CheckScriptRoundTrip(const GeneratedScenario& scenario,
                          OracleReport* report) {
  const std::string script = scenario.program.ToScript();
  Result<Program> reparsed = ParseProgram(script);
  if (!reparsed.ok()) {
    report->failures.push_back(
        {OracleKind::kScriptRoundTrip,
         "ToScript produced an unparseable script: " +
             reparsed.status().ToString() + "\n-- script:\n" + script});
    return;
  }
  if (!(*reparsed == scenario.program)) {
    report->failures.push_back(
        {OracleKind::kScriptRoundTrip,
         "parse(ToScript(p)) != p\n-- script:\n" + script +
             "-- reparsed as:\n" + reparsed->ToScript()});
  }
}

}  // namespace

const char* OracleKindName(OracleKind kind) {
  switch (kind) {
    case OracleKind::kReplay:
      return "replay";
    case OracleKind::kStreaming:
      return "streaming";
    case OracleKind::kScriptRoundTrip:
      return "script-roundtrip";
  }
  return "unknown";
}

std::string OracleReport::ToString() const {
  std::string out;
  for (const OracleFailure& failure : failures) {
    out += "[";
    out += OracleKindName(failure.kind);
    out += "] ";
    out += failure.detail;
    if (out.back() != '\n') out += '\n';
  }
  return out;
}

OracleReport CheckScenario(const GeneratedScenario& scenario,
                           const OracleOptions& options) {
  OracleReport report;
  CheckReplay(scenario, &report);
  CheckStreaming(scenario, options, &report);
  CheckScriptRoundTrip(scenario, &report);
  return report;
}

}  // namespace fuzz
}  // namespace foofah
