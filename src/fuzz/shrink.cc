#include "fuzz/shrink.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace foofah {
namespace fuzz {

namespace {

/// Recomputes `scenario->output` from its program and input. False when
/// the program no longer executes (the deletion broke a shape
/// precondition) — such candidates are skipped, not kept.
bool Rebuild(GeneratedScenario* scenario) {
  Result<Table> out = scenario->program.Execute(scenario->input);
  if (!out.ok()) return false;
  scenario->output = std::move(out).value();
  return true;
}

}  // namespace

GeneratedScenario ShrinkScenario(const GeneratedScenario& failing,
                                 const FailurePredicate& still_fails) {
  GeneratedScenario best = failing;
  bool progress = true;
  while (progress) {
    progress = false;

    // Pass 1: drop one operation. Shrinking the program first tends to
    // unlock row deletions (fewer ops, fewer shape preconditions).
    for (size_t i = 0; i < best.program.size(); ++i) {
      GeneratedScenario candidate = best;
      std::vector<Operation> ops = best.program.operations();
      ops.erase(ops.begin() + static_cast<ptrdiff_t>(i));
      candidate.program = Program(std::move(ops));
      if (!Rebuild(&candidate)) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) continue;

    // Pass 2: drop one input row.
    for (size_t r = 0; r < best.input.num_rows(); ++r) {
      GeneratedScenario candidate = best;
      candidate.input.RemoveRow(r);
      if (!Rebuild(&candidate)) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return best;
}

GeneratedScenario ShrinkScenario(const GeneratedScenario& failing,
                                 const OracleOptions& options) {
  return ShrinkScenario(failing, [&options](const GeneratedScenario& s) {
    return !CheckScenario(s, options).ok();
  });
}

}  // namespace fuzz
}  // namespace foofah
