#ifndef FOOFAH_PROGRAM_PARSER_H_
#define FOOFAH_PROGRAM_PARSER_H_

#include <string_view>

#include "program/program.h"
#include "util/status.h"

namespace foofah {

/// Parses the paper's surface syntax back into a Program. Accepts one
/// operation per line in either of the forms
///
///   t = split(t, 1, ':')
///   split(t, 1, ':')
///   split(1, ':')
///
/// String parameters are single-quoted with \', \\, \n, \t escapes.
/// Blank lines and lines starting with '#' are skipped. Round-trips
/// Program::ToScript exactly.
///
/// Grammar accepted per operator (column indexes are 0-based):
///   drop(i)  move(i, j)  copy(i)  merge(i, j[, 'glue'])  split(i, 'd')
///   fold(i[, 1])  unfold(i, j)  fill(i)  divide(i, 'digits|alpha|alnum')
///   delete(i)  extract(i, 'regex')  transpose()
///   wrap(i)  wrapevery(k)  wrapall()
///   splitall(i, 'd')  deleterow(k)        [extension operators]
Result<Program> ParseProgram(std::string_view script);

}  // namespace foofah

#endif  // FOOFAH_PROGRAM_PARSER_H_
