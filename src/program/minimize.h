#ifndef FOOFAH_PROGRAM_MINIMIZE_H_
#define FOOFAH_PROGRAM_MINIMIZE_H_

#include "program/program.h"
#include "table/table.h"

namespace foofah {

/// Removes operations whose omission does not change the program's output
/// on the example pair, repeating until no single removal survives. The
/// search already prefers short programs (§4.2: cost = program length),
/// but because the TED Batch heuristic is inadmissible the result can be
/// slightly longer than minimal; this post-pass restores the readability
/// goal ("shorter programs will be easier to understand") at the cost of a
/// few extra executions.
///
/// The returned program is guaranteed to map `input` to `output` whenever
/// the given program does; if the given program does not (or fails to
/// execute), it is returned unchanged.
Program MinimizeProgram(const Program& program, const Table& input,
                        const Table& output);

}  // namespace foofah

#endif  // FOOFAH_PROGRAM_MINIMIZE_H_
