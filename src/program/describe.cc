#include "program/describe.h"

#include <sstream>

namespace foofah {

namespace {

// Renders a delimiter/pattern readably, naming whitespace characters.
std::string Readable(const std::string& text) {
  if (text == " ") return "a space";
  if (text == "\t") return "a tab";
  if (text == "\n") return "a line break";
  if (text.empty()) return "nothing in between";
  return "'" + text + "'";
}

}  // namespace

std::string DescribeOperation(const Operation& operation) {
  std::ostringstream out;
  switch (operation.op) {
    case OpCode::kDrop:
      out << "delete column " << operation.col1;
      break;
    case OpCode::kMove:
      out << "move column " << operation.col1 << " to position "
          << operation.col2;
      break;
    case OpCode::kCopy:
      out << "append a copy of column " << operation.col1;
      break;
    case OpCode::kMerge:
      out << "concatenate columns " << operation.col1 << " and "
          << operation.col2 << " (with "
          << (operation.text.empty() ? std::string("nothing")
                                     : Readable(operation.text))
          << " in between) into a new last column";
      break;
    case OpCode::kSplit:
      out << "split column " << operation.col1
          << " at the first occurrence of " << Readable(operation.text);
      break;
    case OpCode::kFold:
      if (operation.int_param != 0) {
        out << "fold the columns from " << operation.col1
            << " onward into key/value rows, taking column names from the "
               "first row";
      } else {
        out << "fold the columns from " << operation.col1
            << " onward into one value per row";
      }
      break;
    case OpCode::kUnfold:
      out << "cross-tabulate: the values of column " << operation.col1
          << " become column headers holding the values of column "
          << operation.col2;
      break;
    case OpCode::kFill:
      out << "fill empty cells of column " << operation.col1
          << " with the value above";
      break;
    case OpCode::kDivide:
      out << "divide column " << operation.col1
          << " into two columns: cells that are all "
          << DividePredicateName(
                 static_cast<DividePredicate>(operation.int_param))
          << " on the left, everything else on the right";
      break;
    case OpCode::kDelete:
      out << "delete every row whose column " << operation.col1
          << " is empty";
      break;
    case OpCode::kExtract:
      out << "extract the first match of " << Readable(operation.text)
          << " from column " << operation.col1 << " into a new column";
      break;
    case OpCode::kTranspose:
      out << "transpose the table (rows become columns)";
      break;
    case OpCode::kWrapColumn:
      out << "concatenate rows that share the value in column "
          << operation.col1;
      break;
    case OpCode::kWrapEvery:
      out << "concatenate every " << operation.int_param
          << " consecutive rows into one";
      break;
    case OpCode::kWrapAll:
      out << "concatenate all rows into a single row";
      break;
    case OpCode::kSplitAll:
      out << "split column " << operation.col1
          << " at every occurrence of " << Readable(operation.text);
      break;
    case OpCode::kDeleteRow:
      out << "delete row " << operation.int_param;
      break;
  }
  return out.str();
}

std::string DescribeProgram(const Program& program) {
  if (program.empty()) {
    return "(empty program: the input already matches the output)\n";
  }
  std::ostringstream out;
  for (size_t i = 0; i < program.size(); ++i) {
    out << (i + 1) << ". " << DescribeOperation(program.operation(i)) << "\n";
  }
  return out.str();
}

}  // namespace foofah
