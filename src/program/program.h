#ifndef FOOFAH_PROGRAM_PROGRAM_H_
#define FOOFAH_PROGRAM_PROGRAM_H_

#include <string>
#include <vector>

#include "ops/operation.h"
#include "table/table.h"
#include "util/status.h"

namespace foofah {

/// A loop-free, straight-line data transformation program (Definition 3.1):
/// a sequence of operations where the output of p_i is the input of p_{i+1}.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Operation> operations)
      : operations_(std::move(operations)) {}

  const std::vector<Operation>& operations() const { return operations_; }
  size_t size() const { return operations_.size(); }
  bool empty() const { return operations_.empty(); }
  const Operation& operation(size_t i) const { return operations_[i]; }

  void Append(Operation operation) {
    operations_.push_back(std::move(operation));
  }

  /// Runs the program on `input`. Fails with the first operation's error if
  /// any step has parameters outside its domain for the table it receives.
  Result<Table> Execute(const Table& input) const;

  /// Runs the program and also records every intermediate table (including
  /// the input as element 0 and the result as the last element). Used by
  /// examples and the effort model to show transformation traces.
  Result<std::vector<Table>> ExecuteWithTrace(const Table& input) const;

  /// Renders the paper's surface syntax (Fig 6):
  ///   t = split(t, 1, ':')
  ///   t = delete(t, 2)
  ///   ...
  std::string ToScript() const;

  friend bool operator==(const Program& a, const Program& b) {
    return a.operations_ == b.operations_;
  }

 private:
  std::vector<Operation> operations_;
};

}  // namespace foofah

#endif  // FOOFAH_PROGRAM_PROGRAM_H_
