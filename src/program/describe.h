#ifndef FOOFAH_PROGRAM_DESCRIBE_H_
#define FOOFAH_PROGRAM_DESCRIBE_H_

#include <string>

#include "ops/operation.h"
#include "program/program.h"

namespace foofah {

/// One-sentence natural-language description of an operation, e.g.
/// "split column 1 at the first ':'". Supports the paper's validation
/// story (§1, §4.5): the synthesized program is meant to be read and
/// understood by a non-programmer, because eyeballing a large transformed
/// dataset is infeasible.
std::string DescribeOperation(const Operation& operation);

/// Numbered plain-English rendering of a whole program:
///   1. delete every row whose column 1 is empty
///   2. split column 1 at the first ':'
///   ...
/// An empty program renders as a no-op notice.
std::string DescribeProgram(const Program& program);

}  // namespace foofah

#endif  // FOOFAH_PROGRAM_DESCRIBE_H_
