#include "program/minimize.h"

#include <vector>

namespace foofah {

namespace {

bool Maps(const Program& program, const Table& input, const Table& output) {
  Result<Table> out = program.Execute(input);
  return out.ok() && out->ContentEquals(output);
}

}  // namespace

Program MinimizeProgram(const Program& program, const Table& input,
                        const Table& output) {
  if (!Maps(program, input, output)) return program;

  std::vector<Operation> ops = program.operations();
  bool changed = true;
  while (changed && !ops.empty()) {
    changed = false;
    // Single removals first.
    for (size_t skip = 0; !changed && skip < ops.size(); ++skip) {
      std::vector<Operation> candidate;
      candidate.reserve(ops.size() - 1);
      for (size_t i = 0; i < ops.size(); ++i) {
        if (i != skip) candidate.push_back(ops[i]);
      }
      if (Maps(Program(candidate), input, output)) {
        ops = std::move(candidate);
        changed = true;  // Restart: indices shifted.
      }
    }
    if (changed) continue;
    // Pair removals catch mutually cancelling operations (a Move and its
    // inverse, a Copy and the Drop of its copy) that no single removal can
    // eliminate: dropping either one alone breaks the program.
    for (size_t a = 0; !changed && a + 1 < ops.size(); ++a) {
      for (size_t b = a + 1; !changed && b < ops.size(); ++b) {
        std::vector<Operation> candidate;
        candidate.reserve(ops.size() - 2);
        for (size_t i = 0; i < ops.size(); ++i) {
          if (i != a && i != b) candidate.push_back(ops[i]);
        }
        if (Maps(Program(candidate), input, output)) {
          ops = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return Program(std::move(ops));
}

}  // namespace foofah
