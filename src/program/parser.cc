#include "program/parser.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <variant>

#include "util/string_util.h"

namespace foofah {

namespace {

/// One parsed argument: an integer or a quoted string.
using Arg = std::variant<int, std::string>;

struct LineParser {
  std::string_view text;
  size_t pos = 0;
  std::string error = {};

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  void SkipSpace() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseIdentifier() {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size() &&
           (IsAsciiAlnum(text[pos]) || text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    return std::string(text.substr(start, pos - start));
  }

  std::optional<Arg> ParseArg() {
    SkipSpace();
    if (pos >= text.size()) return std::nullopt;
    if (text[pos] == '\'') return ParseQuoted();
    // Integer (possibly negative).
    size_t start = pos;
    if (text[pos] == '-') ++pos;
    while (pos < text.size() && IsAsciiDigit(text[pos])) ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1)) {
      error = "expected integer or quoted string";
      return std::nullopt;
    }
    return std::stoi(std::string(text.substr(start, pos - start)));
  }

  std::optional<Arg> ParseQuoted() {
    ++pos;  // opening quote
    std::string value;
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '\\' && pos + 1 < text.size()) {
        char next = text[pos + 1];
        switch (next) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case '\'':
            value += '\'';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            // Preserve unknown escapes verbatim (regex patterns like \d, \w
            // pass through unchanged).
            value += '\\';
            value += next;
        }
        pos += 2;
        continue;
      }
      if (c == '\'') {
        ++pos;
        return value;
      }
      value += c;
      ++pos;
    }
    error = "unterminated string literal";
    return std::nullopt;
  }
};

Status LineError(size_t line_no, const std::string& detail) {
  std::ostringstream msg;
  msg << "line " << line_no << ": " << detail;
  return Status::ParseError(msg.str());
}

// Extracts an int from args[i] or reports an error.
bool ArgInt(const std::vector<Arg>& args, size_t i, int* out) {
  if (i >= args.size()) return false;
  if (const int* v = std::get_if<int>(&args[i])) {
    *out = *v;
    return true;
  }
  return false;
}

bool ArgString(const std::vector<Arg>& args, size_t i, std::string* out) {
  if (i >= args.size()) return false;
  if (const std::string* v = std::get_if<std::string>(&args[i])) {
    *out = *v;
    return true;
  }
  return false;
}

Result<Operation> BuildOperation(const std::string& name,
                                 const std::vector<Arg>& args) {
  int i = 0;
  int j = 0;
  std::string s;
  if (name == "drop" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return Drop(i);
  }
  if (name == "move" && args.size() == 2 && ArgInt(args, 0, &i) &&
      ArgInt(args, 1, &j)) {
    return Move(i, j);
  }
  if (name == "copy" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return Copy(i);
  }
  if (name == "merge" && ArgInt(args, 0, &i) && ArgInt(args, 1, &j)) {
    if (args.size() == 2) return Merge(i, j);
    if (args.size() == 3 && ArgString(args, 2, &s)) return Merge(i, j, s);
  }
  if (name == "split" && args.size() == 2 && ArgInt(args, 0, &i) &&
      ArgString(args, 1, &s)) {
    return Split(i, s);
  }
  if (name == "splitall" && args.size() == 2 && ArgInt(args, 0, &i) &&
      ArgString(args, 1, &s)) {
    return SplitAll(i, s);
  }
  if (name == "deleterow" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return DeleteRow(i);
  }
  if (name == "fold" && ArgInt(args, 0, &i)) {
    if (args.size() == 1) return Fold(i, /*with_header=*/false);
    if (args.size() == 2 && ArgInt(args, 1, &j)) {
      return Fold(i, /*with_header=*/j != 0);
    }
  }
  if (name == "unfold" && args.size() == 2 && ArgInt(args, 0, &i) &&
      ArgInt(args, 1, &j)) {
    return Unfold(i, j);
  }
  if (name == "fill" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return Fill(i);
  }
  if (name == "divide" && args.size() == 2 && ArgInt(args, 0, &i) &&
      ArgString(args, 1, &s)) {
    for (int p = 0; p < kNumDividePredicates; ++p) {
      auto predicate = static_cast<DividePredicate>(p);
      if (s == DividePredicateName(predicate)) return Divide(i, predicate);
    }
    return Status::ParseError("divide: unknown predicate '" + s + "'");
  }
  if (name == "delete" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return DeleteRows(i);
  }
  if (name == "extract" && args.size() == 2 && ArgInt(args, 0, &i) &&
      ArgString(args, 1, &s)) {
    return Extract(i, s);
  }
  if (name == "transpose" && args.empty()) {
    return Transpose();
  }
  if (name == "wrap" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return WrapColumn(i);
  }
  if (name == "wrapevery" && args.size() == 1 && ArgInt(args, 0, &i)) {
    return WrapEvery(i);
  }
  if (name == "wrapall" && args.empty()) {
    return WrapAll();
  }
  return Status::ParseError("unknown operator or bad arguments: " + name);
}

}  // namespace

Result<Program> ParseProgram(std::string_view script) {
  std::vector<Operation> operations;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= script.size()) {
    size_t end = script.find('\n', start);
    std::string_view line = script.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    ++line_no;

    std::string trimmed = Trim(line);
    if (!trimmed.empty() && trimmed[0] != '#') {
      LineParser parser{trimmed};
      // Optional "t =" prefix.
      size_t saved = parser.pos;
      if (parser.ConsumeWord("t")) {
        if (!parser.Consume('=')) parser.pos = saved;
      }
      std::optional<std::string> name = parser.ParseIdentifier();
      if (!name) return LineError(line_no, "expected operator name");
      if (!parser.Consume('(')) return LineError(line_no, "expected '('");

      std::vector<Arg> args;
      bool first = true;
      while (!parser.Consume(')')) {
        if (!first && !parser.Consume(',')) {
          return LineError(line_no, "expected ',' or ')'");
        }
        parser.SkipSpace();
        // The leading table argument "t" is optional and ignored.
        if (first && parser.ConsumeWord("t")) {
          first = false;
          continue;
        }
        std::optional<Arg> arg = parser.ParseArg();
        if (!arg) {
          return LineError(line_no, parser.error.empty() ? "bad argument"
                                                         : parser.error);
        }
        args.push_back(std::move(*arg));
        first = false;
      }
      if (!parser.AtEnd()) return LineError(line_no, "trailing input");

      Result<Operation> operation = BuildOperation(*name, args);
      if (!operation.ok()) return LineError(line_no, operation.status().message());
      operations.push_back(std::move(operation).value());
    }

    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return Program(std::move(operations));
}

}  // namespace foofah
