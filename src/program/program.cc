#include "program/program.h"

#include "ops/operators.h"

namespace foofah {

Result<Table> Program::Execute(const Table& input) const {
  Table current = input;
  for (const Operation& operation : operations_) {
    Result<Table> next = ApplyOperation(current, operation);
    if (!next.ok()) return next.status();
    current = std::move(next).value();
  }
  return current;
}

Result<std::vector<Table>> Program::ExecuteWithTrace(const Table& input) const {
  std::vector<Table> trace;
  trace.reserve(operations_.size() + 1);
  trace.push_back(input);
  for (const Operation& operation : operations_) {
    Result<Table> next = ApplyOperation(trace.back(), operation);
    if (!next.ok()) return next.status();
    trace.push_back(std::move(next).value());
  }
  return trace;
}

std::string Program::ToScript() const {
  std::string out;
  for (const Operation& operation : operations_) {
    out += "t = ";
    out += operation.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace foofah
