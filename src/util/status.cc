#include "util/status.h"

namespace foofah {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace foofah
