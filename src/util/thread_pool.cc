#include "util/thread_pool.h"

#include <algorithm>

#include "util/cancellation.h"
#include "util/fault_injection.h"

namespace foofah {

int ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int workers = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunk() {
  // count_, body_ and cancel_ are stable for the duration of a job:
  // ParallelFor only rewrites them after every participant has checked
  // out below.
  for (;;) {
    // A fired token stops index handout: the remaining queue is abandoned
    // wholesale rather than drained one no-op at a time.
    if (cancel_ != nullptr && cancel_->IsCancelled()) return;
    size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) return;
    (*body_)(index);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunChunk();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body,
                             const CancellationToken* cancel) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->IsCancelled()) return;
      body(i);
    }
    return;
  }
  FOOFAH_FAULT_HIT(fault_points::kPoolDispatch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    cancel_ = cancel;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunChunk();  // The caller is a full participant.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  body_ = nullptr;
  cancel_ = nullptr;
}

}  // namespace foofah
