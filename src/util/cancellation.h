#ifndef FOOFAH_UTIL_CANCELLATION_H_
#define FOOFAH_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace foofah {

/// Why a CancellationToken fired. Checked by the search engine to map a
/// cooperative stop onto the right SearchStats flag (timed_out /
/// cancelled / budget_exhausted).
enum class CancelReason : uint8_t {
  kNone = 0,          ///< Token has not fired.
  kExternal = 1,      ///< RequestCancel() was called (user abort).
  kDeadline = 2,      ///< The wall-clock deadline passed.
  kNodeBudget = 3,    ///< CountNode() exceeded the node budget.
  kMemoryBudget = 4,  ///< ChargeMemory() exceeded the byte budget.
  kDiskBudget = 5,    ///< ChargeDisk() exceeded the spill byte budget.
};

/// Returns a short stable name for a cancel reason ("external",
/// "deadline", ...), for log lines and test failure messages.
const char* CancelReasonName(CancelReason reason);

/// The one canonical CancelReason → Status mapping, used by every layer
/// that turns a cooperative stop into a typed error (driver, degradation
/// ladder, synthesis service):
///
///   kNone         → OK
///   kExternal     → kCancelled        (abandoned on purpose)
///   kDeadline     → kResourceExhausted ("deadline expired")
///   kNodeBudget   → kResourceExhausted ("node budget exhausted")
///   kMemoryBudget → kResourceExhausted ("memory budget exhausted")
///   kDiskBudget   → kResourceExhausted ("disk budget exhausted")
///
/// `context` prefixes the message ("search: deadline expired"); empty
/// omits the prefix. Keeping this in one place stops callers from folding
/// an external cancel into kResourceExhausted (or inventing per-layer
/// spellings of the same stop).
Status StatusFromCancelReason(CancelReason reason,
                              std::string_view context = {});

/// Cooperative cancellation shared across the synthesis stack.
///
/// One token is threaded from the driver through Search, ThreadPool task
/// bodies, and the TED heuristics' inner loops; each layer polls
/// IsCancelled() at its natural granularity (per expansion, per candidate,
/// per DP cell batch) so a deadline interrupts work mid-evaluation with
/// bounded overshoot instead of waiting for the next serial round. The
/// token aggregates four stop conditions:
///
///  - an absolute wall-clock deadline (steady_clock; see TightenDeadline),
///  - an external cancel (RequestCancel),
///  - a generated-node budget (SetNodeBudget / CountNode), and
///  - an approximate memory budget in bytes (SetMemoryBudget /
///    ChargeMemory).
///
/// The first condition observed wins and is latched: reason() never
/// changes once set, and IsCancelled() stays true forever after (tokens
/// are single-shot; create a fresh one per protocol run). All members are
/// lock-free atomics, so polling from pool workers and the caller
/// concurrently is safe and cheap — the fast path of IsCancelled() is one
/// relaxed load when no deadline is armed, plus one steady_clock read when
/// one is.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Fires the token with CancelReason::kExternal (no-op if already
  /// fired). Safe from any thread, including signal-adjacent contexts —
  /// it is a single atomic store chain.
  void RequestCancel() { Trip(CancelReason::kExternal, NowNs()); }

  /// Arms (or tightens) the wall-clock deadline: the new deadline is
  /// min(existing, `deadline`). Deadlines only ever move earlier so a
  /// driver-level protocol budget composes with a per-round timeout — the
  /// stricter of the two wins.
  void TightenDeadline(Clock::time_point deadline);

  /// Convenience: TightenDeadline(now + ms). Non-positive ms arms a
  /// deadline in the immediate past (the next poll fires).
  void TightenDeadlineAfterMs(int64_t ms);

  /// Caps the number of nodes charged via CountNode(); 0 disables.
  void SetNodeBudget(uint64_t max_nodes) {
    node_budget_.store(max_nodes, std::memory_order_relaxed);
  }

  /// Caps the bytes charged via ChargeMemory(); 0 disables.
  void SetMemoryBudget(uint64_t max_bytes) {
    memory_budget_.store(max_bytes, std::memory_order_relaxed);
  }

  /// Caps the bytes charged via ChargeDisk() — the streaming executor's
  /// spill files; 0 disables. Together with the memory budget this
  /// completes the degradation ladder: in-memory → spill-to-disk →
  /// typed kResourceExhausted when both are exhausted.
  void SetDiskBudget(uint64_t max_bytes) {
    disk_budget_.store(max_bytes, std::memory_order_relaxed);
  }

  /// Charges `n` nodes against the node budget and returns IsCancelled().
  /// The budget fires when the running total exceeds the cap.
  bool CountNode(uint64_t n = 1);

  /// Charges `bytes` against the memory budget and returns IsCancelled().
  bool ChargeMemory(uint64_t bytes);

  /// Charges `bytes` against the disk budget and returns IsCancelled().
  bool ChargeDisk(uint64_t bytes);

  /// True once any stop condition has been observed. When a deadline is
  /// armed this also performs the clock check, so the first caller to
  /// poll after the deadline passes is the one that trips the token.
  bool IsCancelled() const;

  /// The latched stop condition, or kNone. Does not poll the clock —
  /// call IsCancelled() first when a deadline may have just expired.
  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// True if TightenDeadline has ever been called.
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// How far past the armed deadline the token was when the expiry was
  /// first observed, in milliseconds. 0 unless reason() == kDeadline.
  /// This is the per-run overshoot sample the deadline benchmarks and the
  /// corpus overshoot regression aggregate.
  double OvershootMs() const;

  /// Total nodes charged so far (for stats, not control flow).
  uint64_t nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Total bytes charged so far (for stats, not control flow).
  uint64_t memory_charged() const {
    return memory_.load(std::memory_order_relaxed);
  }

  /// Total spill bytes charged so far (for stats, not control flow).
  uint64_t disk_charged() const {
    return disk_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  /// Latches `reason` if the token has not fired yet; records the
  /// observation timestamp for OvershootMs().
  void Trip(CancelReason reason, int64_t observed_ns) const;

  // All state is mutable because IsCancelled() — logically const — is the
  // poll that latches a deadline expiry.
  mutable std::atomic<uint8_t> reason_{0};
  mutable std::atomic<int64_t> deadline_ns_{kNoDeadline};
  mutable std::atomic<int64_t> tripped_at_ns_{0};
  mutable std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> node_budget_{0};
  mutable std::atomic<uint64_t> memory_{0};
  std::atomic<uint64_t> memory_budget_{0};
  mutable std::atomic<uint64_t> disk_{0};
  std::atomic<uint64_t> disk_budget_{0};
};

}  // namespace foofah

#endif  // FOOFAH_UTIL_CANCELLATION_H_
