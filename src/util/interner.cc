#include "util/interner.h"

namespace foofah {

std::string_view StringInterner::Intern(std::string_view s) {
  ++lookups_;
  auto it = set_.find(s);
  if (it != set_.end()) {
    ++hits_;
    return *it;
  }
  std::string_view stored = arena_.CopyString(s);
  set_.insert(stored);
  return stored;
}

void StringInterner::Reset() {
  set_.clear();
  arena_.Reset();
}

StringInterner::Stats StringInterner::stats() const {
  Stats stats;
  stats.lookups = lookups_;
  stats.hits = hits_;
  stats.entries = set_.size();
  stats.bytes_stored = arena_.bytes_used();
  return stats;
}

}  // namespace foofah
