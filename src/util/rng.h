#ifndef FOOFAH_UTIL_RNG_H_
#define FOOFAH_UTIL_RNG_H_

#include <cstdint>

namespace foofah {

/// Minimal deterministic linear congruential generator, independent of any
/// global RNG state. One instance per fuzz case / generated scenario is the
/// determinism contract of the whole fuzzing layer: every random decision
/// flows from an Lcg seeded by an explicit integer, so the same seed always
/// reproduces the same table, the same sampled program, and the same
/// byte-identical bundle — across runs, platforms, and thread counts.
///
/// (Knuth MMIX multiplier; the seed is pre-scrambled with a Fibonacci
/// hashing constant so small consecutive seeds do not produce correlated
/// first draws.)
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed * 2654435761u + 1) {}

  /// Uniform draw in [0, bound). `bound` must be non-zero.
  uint32_t Next(uint32_t bound) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>((state_ >> 33) % bound);
  }

  /// True with probability `percent`/100.
  bool Chance(uint32_t percent) { return Next(100) < percent; }

 private:
  uint64_t state_;
};

}  // namespace foofah

#endif  // FOOFAH_UTIL_RNG_H_
