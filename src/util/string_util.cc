#include "util/string_util.h"

namespace foofah {

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiAlnum(char c) { return IsAsciiDigit(c) || IsAsciiAlpha(c); }

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsPrintableSymbol(char c) {
  return c > ' ' && c < 0x7f && !IsAsciiAlnum(c);
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsAsciiDigit(c)) return false;
  }
  return true;
}

bool AllAlpha(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsAsciiAlpha(c)) return false;
  }
  return true;
}

bool AllAlnum(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsAsciiAlnum(c)) return false;
  }
  return true;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StringContainment(std::string_view a, std::string_view b) {
  if (a.size() >= b.size()) return Contains(a, b);
  return Contains(b, a);
}

std::pair<std::string, std::string> SplitFirst(std::string_view s,
                                               std::string_view delim) {
  if (delim.empty()) return {std::string(s), std::string()};
  size_t pos = s.find(delim);
  if (pos == std::string_view::npos) return {std::string(s), std::string()};
  return {std::string(s.substr(0, pos)),
          std::string(s.substr(pos + delim.size()))};
}

std::vector<std::string> SplitAll(std::string_view s, std::string_view delim) {
  std::vector<std::string> parts;
  if (delim.empty()) {
    parts.emplace_back(s);
    return parts;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + delim.size();
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsAsciiSpace(s[begin])) ++begin;
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::set<char> AlnumChars(std::string_view s) {
  std::set<char> out;
  for (char c : s) {
    if (IsAsciiAlnum(c)) out.insert(c);
  }
  return out;
}

std::set<char> SymbolChars(std::string_view s) {
  std::set<char> out;
  for (char c : s) {
    if (IsPrintableSymbol(c)) out.insert(c);
  }
  return out;
}

uint64_t Fnv1aHash(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace foofah
