#ifndef FOOFAH_UTIL_RETRY_H_
#define FOOFAH_UTIL_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <utility>

namespace foofah {

/// Deterministic exponential backoff schedule for retrying kUnavailable
/// rejections (admission-queue shedding, contended single-owner objects).
/// Pure arithmetic — no clock, no randomness — so tests can assert the
/// exact schedule and the degradation ladder's budget decay can reuse it.
struct BackoffPolicy {
  /// Delay before the first retry (attempt 0), in milliseconds.
  int64_t initial_delay_ms = 10;
  /// Growth factor between consecutive retries; values <= 1 make the
  /// schedule flat.
  double multiplier = 2.0;
  /// Upper clamp on any single delay.
  int64_t max_delay_ms = 2'000;
  /// Total tries (first attempt + retries). <= 1 disables retrying.
  int max_attempts = 5;

  /// Delay to sleep before retry number `attempt` (0-based: attempt 0 is
  /// the wait between the first failure and the first retry). Clamped to
  /// [0, max_delay_ms]; saturates instead of overflowing for large
  /// attempt counts.
  int64_t DelayForAttemptMs(int attempt) const {
    if (attempt < 0) attempt = 0;
    double delay = static_cast<double>(initial_delay_ms);
    for (int i = 0; i < attempt; ++i) {
      delay *= multiplier;
      if (delay >= static_cast<double>(max_delay_ms)) {
        return std::max<int64_t>(0, max_delay_ms);
      }
    }
    int64_t clamped = static_cast<int64_t>(delay);
    return std::clamp<int64_t>(clamped, 0, max_delay_ms);
  }

  /// Like DelayForAttemptMs but never below a server-provided retry-after
  /// hint (e.g. ServiceResponse::retry_after_ms); still clamped to
  /// max_delay_ms so a hostile hint cannot stall the client forever.
  int64_t DelayWithHintMs(int attempt, int64_t retry_after_hint_ms) const {
    return std::clamp<int64_t>(
        std::max(DelayForAttemptMs(attempt), retry_after_hint_ms), 0,
        max_delay_ms);
  }
};

/// Runs `attempt(i)` up to `policy.max_attempts` times, sleeping between
/// tries via `sleep_ms(delay)`. After each try, `retry_hint(result)` decides
/// whether to retry: a negative value stops (the result is final), a
/// non-negative value is the server's retry-after hint in ms (0 = none).
/// Returns the last result. `sleep_ms` is injected so unit tests can record
/// the schedule instead of actually sleeping.
template <typename AttemptFn, typename RetryHintFn, typename SleepFn>
auto RetryWithBackoff(const BackoffPolicy& policy, AttemptFn&& attempt,
                      RetryHintFn&& retry_hint, SleepFn&& sleep_ms) {
  auto result = attempt(0);
  for (int i = 1; i < policy.max_attempts; ++i) {
    int64_t hint = retry_hint(result);
    if (hint < 0) break;
    sleep_ms(policy.DelayWithHintMs(i - 1, hint));
    result = attempt(i);
  }
  return result;
}

}  // namespace foofah

#endif  // FOOFAH_UTIL_RETRY_H_
