#ifndef FOOFAH_UTIL_STRING_UTIL_H_
#define FOOFAH_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace foofah {

/// Character-class helpers used by the pruning rules (§4.3) and parameter
/// enumeration. We deliberately use locale-independent ASCII definitions:
/// the paper's rules are phrased over "a-z, A-Z, 0-9" and "printable
/// non-alphanumeric symbols".
bool IsAsciiAlnum(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlpha(char c);
bool IsAsciiSpace(char c);
/// Printable, non-alphanumeric, non-space characters (candidate delimiters).
bool IsPrintableSymbol(char c);

/// True when every character of `s` is an ASCII digit (and `s` nonempty).
bool AllDigits(std::string_view s);
/// True when every character of `s` is an ASCII letter (and `s` nonempty).
bool AllAlpha(std::string_view s);
/// True when every character of `s` is alphanumeric (and `s` nonempty).
bool AllAlnum(std::string_view s);

/// True when `needle` occurs in `haystack` (empty needle always matches).
bool Contains(std::string_view haystack, std::string_view needle);

/// True when one of the strings contains the other (the paper's "string
/// containment relationship" used by the TED Transform cost, §4.2.1).
bool StringContainment(std::string_view a, std::string_view b);

/// Splits `s` at the FIRST occurrence of `delim` into (left, right).
/// When `delim` is absent, returns (s, ""). This matches the paper's
/// leftSplit/rightSplit semantics (Appendix A, Split).
std::pair<std::string, std::string> SplitFirst(std::string_view s,
                                               std::string_view delim);

/// Splits `s` at EVERY occurrence of `delim`; never returns an empty vector.
std::vector<std::string> SplitAll(std::string_view s, std::string_view delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// The set of distinct alphanumeric characters in `s`.
std::set<char> AlnumChars(std::string_view s);
/// The set of distinct printable non-alphanumeric symbols in `s`.
std::set<char> SymbolChars(std::string_view s);

/// 64-bit FNV-1a, used to hash tables for search-state deduplication.
uint64_t Fnv1aHash(std::string_view data, uint64_t seed = 14695981039346656037ULL);

}  // namespace foofah

#endif  // FOOFAH_UTIL_STRING_UTIL_H_
