#ifndef FOOFAH_UTIL_STATUS_H_
#define FOOFAH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace foofah {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow status idiom: fallible APIs return a Status (or a
/// Result<T>, below) instead of throwing.
enum class StatusCode {
  kOk = 0,
  /// A parameter is outside its domain (bad column index, empty table where
  /// one is required, malformed regex, ...).
  kInvalidArgument,
  /// The requested item does not exist (e.g., unknown operator name).
  kNotFound,
  /// A search or driver exhausted its node/time budget without an answer.
  kResourceExhausted,
  /// Input text could not be parsed (program parser, CSV reader).
  kParseError,
  /// The operation is valid but unsupported in this build/configuration.
  kUnimplemented,
  /// Anything else.
  kInternal,
  /// The caller (or its owner) cancelled the operation before it finished.
  /// Distinct from kResourceExhausted: the work was abandoned on purpose,
  /// not stopped by a budget.
  kCancelled,
  /// The service is temporarily unable to take the work (admission queue
  /// full, in-flight budget exceeded, shutting down, or a contended
  /// single-owner object). Retrying after a backoff is expected to
  /// succeed; see util/retry.h.
  kUnavailable,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. The usual accessor
/// pattern is:
///   Result<Table> r = ApplyOperation(...);
///   if (!r.ok()) return r.status();
///   const Table& t = *r;
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return my_table;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status; `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK() when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace foofah

#endif  // FOOFAH_UTIL_STATUS_H_
