#ifndef FOOFAH_UTIL_ARENA_H_
#define FOOFAH_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace foofah {

/// A bump allocator for short-lived, batch-freed byte storage — the cell
/// store of the streaming execution backend (src/exec/). Allocation is a
/// pointer bump within the current block; when a block fills, a new block
/// of twice the size is chained on. Nothing is freed individually:
/// Reset() rewinds every block to empty and *retains* the blocks, so a
/// chunked workload (fill arena, process chunk, reset, repeat) reaches a
/// steady state after the first few chunks and performs zero heap
/// allocations thereafter. That retention is what keeps the exec
/// backend's memory bounded by the largest chunk, not the file.
///
/// Not thread-safe: one arena belongs to one pipeline.
class Arena {
 public:
  /// `first_block_bytes` sizes the initial block; later blocks double.
  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `n` bytes aligned to `align` (a power of two). Never null;
  /// n == 0 returns a valid unique-ish pointer into the current block.
  void* Alloc(size_t n, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena and returns a view of the copy. The view
  /// is valid until Reset() or destruction.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return std::string_view();
    char* p = static_cast<char*>(Alloc(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return std::string_view(p, s.size());
  }

  /// Rewinds all blocks to empty, retaining their storage for reuse.
  /// Every pointer previously returned by Alloc is invalidated.
  void Reset();

  /// Bytes handed out since the last Reset (live bytes).
  size_t bytes_used() const { return bytes_used_; }

  /// Total block capacity currently held (>= bytes_used; survives Reset).
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Largest bytes_used() ever observed — the arena's contribution to the
  /// exec backend's peak-resident gauge.
  size_t high_water_bytes() const { return high_water_; }

  static constexpr size_t kDefaultFirstBlockBytes = 64u << 10;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  /// Makes the current block able to take `n` bytes at `align`.
  Block& BlockFor(size_t n, size_t align);

  std::vector<Block> blocks_;
  size_t current_ = 0;        ///< Index of the block being bumped.
  size_t bytes_used_ = 0;     ///< Sum of aligned allocations since Reset.
  size_t bytes_reserved_ = 0;
  size_t high_water_ = 0;
  size_t first_block_bytes_;
};

}  // namespace foofah

#endif  // FOOFAH_UTIL_ARENA_H_
