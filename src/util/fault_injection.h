#ifndef FOOFAH_UTIL_FAULT_INJECTION_H_
#define FOOFAH_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace foofah {

/// Canonical names of the failure points compiled into the library. Tests
/// arm these by name; KnownPoints() returns the same list so sweeps can
/// iterate every point without hard-coding strings twice.
namespace fault_points {
/// Table copy-on-write detach of the row-handle spine (table/table.cc).
inline constexpr const char* kTableDetachSpine = "table/detach_spine";
/// Table copy-on-write detach of a single row (table/table.cc).
inline constexpr const char* kTableDetachRow = "table/detach_row";
/// std::regex compilation on an Extract cache miss (ops/operators.cc).
/// Failure here makes the compile behave as if the pattern were invalid.
inline constexpr const char* kRegexCompile = "ops/regex_compile";
/// ThreadPool job dispatch, hit once per ParallelFor with workers
/// (util/thread_pool.cc).
inline constexpr const char* kPoolDispatch = "pool/dispatch";
/// Heuristic-cache insert after a fresh estimate (search/search.cc).
/// Failure here silently skips the insert — the cache is a pure
/// accelerator, so results must not change.
inline constexpr const char* kHeuristicCacheInsert = "heuristic/cache_insert";
/// Every heuristic estimate computed by the search (search/search.cc).
/// Callbacks here are how tests plant a slow heuristic for deadline
/// overshoot regressions.
inline constexpr const char* kHeuristicEstimate = "search/heuristic_estimate";
/// SynthesisService admission check (server/service.cc), hit once per
/// Submit considered for admission. A forced failure sheds the request as
/// if the queue were full; callbacks let tests pin admission interleaving.
inline constexpr const char* kServerAdmit = "server/admit";
/// SynthesisService worker dispatch of a popped request
/// (server/service.cc), hit after the request leaves the queue and before
/// the ladder runs. A forced failure drops the dispatch: the request
/// completes with a typed kUnavailable instead of running; callbacks are
/// how tests park every worker to pin queue occupancy.
inline constexpr const char* kServerDispatch = "server/dispatch";
/// WranglerSession::Apply between the single-owner guard acquire and the
/// history mutation (wrangler/session.cc). Callbacks let tests hold one
/// call open while a second thread's call must observe kUnavailable.
inline constexpr const char* kWranglerApply = "wrangler/apply";
/// Degradation-ladder rung start (server/ladder.cc), hit once per rung in
/// both sequential and portfolio mode, just before the rung's search
/// launches. Callbacks let tests park a chosen rung — e.g. hold a
/// portfolio loser open until the winner finishes, then assert the
/// winner's cancellation reached it.
inline constexpr const char* kLadderRungStart = "ladder/rung_start";
/// Spill run-file page write in the streaming executor (exec/spill.cc),
/// hit once per page flushed (open failures take the first hit). A
/// forced failure simulates a short write / ENOSPC: the page is treated
/// as unwritten and the apply fails with typed kUnavailable.
inline constexpr const char* kExecSpillWrite = "exec/spill_write";
/// Spill run-file page read (exec/spill.cc), hit once per page header
/// read. A forced failure simulates EIO mid-scan: typed kUnavailable,
/// same path a CRC mismatch takes.
inline constexpr const char* kExecSpillRead = "exec/spill_read";
/// Crash-safe output commit of foofah_apply's result
/// (util/tempfile.cc): hit twice per commit — before the fsync of the
/// temp output and before the atomic rename onto the final path. A
/// forced failure at either ordinal leaves the final path untouched.
inline constexpr const char* kExecOutputCommit = "exec/output_commit";
/// Recursive removal of a per-run temp directory (util/tempfile.cc),
/// hit once per ScopedTempDir cleanup. A forced failure simulates a
/// crash before cleanup: the directory is left behind and must be
/// reaped by the next invocation's ReapOrphanedTempDirs.
inline constexpr const char* kExecTempCleanup = "exec/temp_cleanup";
/// CsvChunkWriter page flush to a file (table/csv_stream.cc), hit once
/// per buffer flush. A forced failure simulates a short write on a full
/// disk: typed kUnavailable, latched like a real fwrite failure.
inline constexpr const char* kCsvStreamWrite = "csv/stream_write";
}  // namespace fault_points

/// Deterministic fault-injection registry.
///
/// Production code marks interesting failure points with the
/// FOOFAH_FAULT_HIT / FOOFAH_FAULT_FAIL macros below. When the library is
/// built with -DFOOFAH_FAULT_INJECTION=ON those macros consult this
/// process-wide registry; otherwise they compile to nothing (FAIL to a
/// constant false), so release builds carry zero overhead.
///
/// Tests arm a point by name before running the code under test:
///
///   FaultInjector::Instance().Reset();                  // per-test seed
///   FaultInjector::Instance().ArmFailure(
///       fault_points::kRegexCompile, /*nth_hit=*/1);    // fail 1st hit
///   ...
///   EXPECT_GT(FaultInjector::Instance().HitCount(
///       fault_points::kRegexCompile), 0u);
///
/// Determinism: a failure is keyed to an exact hit ordinal (countdown),
/// not to randomness, so a seeded test fires the same fault at the same
/// site on every run. Callbacks run on whichever thread hits the point —
/// they must be thread-safe and must not block on the registry (the
/// registry lock is released before the callback runs, so callbacks may
/// themselves hit further fault points).
class FaultInjector {
 public:
  /// The process-wide registry used by the macros.
  static FaultInjector& Instance();

  /// Every point name compiled into the library, sorted. Stable across
  /// builds; used by cancel-at-every-point sweep tests.
  static const std::vector<std::string>& KnownPoints();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` to fail exactly on its `nth_hit`-th hit (1-based) after
  /// this call, once. Replaces any previous failure arming for the point.
  void ArmFailure(std::string_view point, uint64_t nth_hit);

  /// Arms `point` to fail on every hit until disarmed.
  void ArmFailureAlways(std::string_view point);

  /// Runs `callback` on every hit of `point` (on the hitting thread,
  /// outside the registry lock). Replaces any previous callback.
  void ArmCallback(std::string_view point, std::function<void()> callback);

  /// Clears failure arming and callback for one point; hit counts stay.
  void Disarm(std::string_view point);

  /// Clears all arming and all hit counts — call from test SetUp so each
  /// test starts from the same seed state.
  void Reset();

  /// Hits observed at `point` since the last Reset().
  uint64_t HitCount(std::string_view point) const;

  /// Instrumentation entry (use the macros, not this directly): records a
  /// hit, runs the armed callback if any, and returns whether the armed
  /// failure schedule says this hit should fail.
  bool ShouldFail(const char* point);

 private:
  FaultInjector() = default;

  struct PointState {
    uint64_t hits = 0;
    uint64_t fail_at_hit = 0;  ///< 1-based ordinal; 0 = no one-shot failure.
    bool fail_always = false;
    std::shared_ptr<std::function<void()>> callback;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
};

}  // namespace foofah

#ifdef FOOFAH_FAULT_INJECTION
/// Records a hit at `point` and runs any armed callback. Statement.
#define FOOFAH_FAULT_HIT(point) \
  (void)::foofah::FaultInjector::Instance().ShouldFail(point)
/// Records a hit, runs any armed callback, and evaluates to true when the
/// armed failure schedule fires. Expression usable in an if().
#define FOOFAH_FAULT_FAIL(point) \
  ::foofah::FaultInjector::Instance().ShouldFail(point)
#else
#define FOOFAH_FAULT_HIT(point) \
  do {                          \
  } while (false)
#define FOOFAH_FAULT_FAIL(point) false
#endif  // FOOFAH_FAULT_INJECTION

#endif  // FOOFAH_UTIL_FAULT_INJECTION_H_
