#ifndef FOOFAH_UTIL_THREAD_POOL_H_
#define FOOFAH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace foofah {

class CancellationToken;

/// A minimal fixed-size fork-join pool for data-parallel loops. Built for
/// the search engine's expansion inner loop: the caller owns a batch of
/// independent index-addressed work items, fans them out with ParallelFor,
/// and continues serially once every item is done. There is no task queue
/// and no work stealing — one job runs at a time, indices are handed out
/// through a single atomic counter, and the calling thread participates,
/// so a pool of size 1 degenerates to a plain serial loop with zero
/// synchronization.
///
/// Tasks communicate failure through their result slots (Status or
/// equivalent); they must not throw. The pool itself never throws.
class ThreadPool {
 public:
  /// Creates a pool that runs jobs on `num_threads` threads total: the
  /// calling thread plus `num_threads - 1` workers. Values below 2 spawn
  /// no workers at all.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes `body(i)` for every i in [0, count), spread across the pool,
  /// and returns once all invocations have finished. The body may be
  /// called concurrently from different threads with distinct indices;
  /// iteration order is unspecified. Must not be called reentrantly from
  /// inside a body, and the pool serves one ParallelFor at a time.
  ///
  /// When `cancel` is non-null and fires mid-job, participants stop
  /// drawing new indices: bodies already running finish normally, queued
  /// (not yet dispatched) indices are abandoned, and ParallelFor still
  /// returns only after every participant has checked out — so there is
  /// no deadlock, no leaked in-flight body, and the pool is immediately
  /// reusable for the next job. Callers must treat the result slots of
  /// abandoned indices as never written.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                   const CancellationToken* cancel = nullptr);

  /// Total threads participating in a job (workers + caller), >= 1.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// The machine's hardware concurrency, clamped to >= 1 (the standard
  /// permits hardware_concurrency() == 0 when unknown).
  static int DefaultThreadCount();

 private:
  void WorkerLoop();
  /// Drains indices from the shared counter until the job is exhausted.
  void RunChunk();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: new job / shutdown.
  std::condition_variable done_cv_;   // Signals caller: all workers done.
  const std::function<void(size_t)>* body_ = nullptr;  // Guarded by job gen.
  const CancellationToken* cancel_ = nullptr;          // Guarded by job gen.
  size_t count_ = 0;
  std::atomic<size_t> next_{0};
  size_t active_workers_ = 0;  // Workers yet to finish the current job.
  uint64_t generation_ = 0;    // Bumped per job so workers never re-run one.
  bool shutdown_ = false;
};

}  // namespace foofah

#endif  // FOOFAH_UTIL_THREAD_POOL_H_
