#ifndef FOOFAH_UTIL_INTERNER_H_
#define FOOFAH_UTIL_INTERNER_H_

#include <cstdint>
#include <string_view>
#include <unordered_set>

#include "util/arena.h"
#include "util/string_util.h"

namespace foofah {

/// Deduplicating string store over an Arena. Intern(s) returns a stable
/// view of a single arena copy of `s`; repeated values (enum-like columns,
/// empty cells, repeated keys — the norm in raw exports) are stored once.
/// The streaming exec backend interns every parsed cell, so a chunk of a
/// million "ACTIVE"/"INACTIVE" rows costs two stored strings, not a
/// million.
///
/// Reset() drops all entries and rewinds the arena (retaining its
/// blocks): the exec backend resets per chunk, bounding the interner by
/// chunk content, never file content. Not thread-safe.
class StringInterner {
 public:
  explicit StringInterner(size_t first_block_bytes = Arena::kDefaultFirstBlockBytes)
      : arena_(first_block_bytes) {}

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns a view of the stored copy of `s`, valid until Reset() or
  /// destruction. Two equal inputs return views of the same bytes.
  std::string_view Intern(std::string_view s);

  /// Drops every entry and rewinds the arena (blocks retained).
  void Reset();

  struct Stats {
    uint64_t lookups = 0;   ///< Total Intern calls since construction.
    uint64_t hits = 0;      ///< Calls resolved to an existing entry.
    size_t entries = 0;     ///< Distinct strings currently stored.
    size_t bytes_stored = 0;  ///< Arena bytes used by current entries.
  };
  Stats stats() const;

  /// Arena capacity held (survives Reset) — the interner's contribution
  /// to the exec backend's resident-memory gauge.
  size_t bytes_reserved() const { return arena_.bytes_reserved(); }
  size_t high_water_bytes() const { return arena_.high_water_bytes(); }

 private:
  struct ViewHash {
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(Fnv1aHash(s));
    }
  };

  Arena arena_;
  std::unordered_set<std::string_view, ViewHash> set_;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace foofah

#endif  // FOOFAH_UTIL_INTERNER_H_
