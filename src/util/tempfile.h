#ifndef FOOFAH_UTIL_TEMPFILE_H_
#define FOOFAH_UTIL_TEMPFILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace foofah {

/// Crash-safe per-run temp directories and atomic output commit, used
/// by the streaming executor's spill path (exec/spill.cc) and
/// foofah_apply's output protocol (exec/runner.cc).
///
/// Ownership protocol: every temp directory created here contains a
/// lock file held under an exclusive flock for the owner's lifetime.
/// A reaper that can acquire the lock (LOCK_EX | LOCK_NB) has proven
/// the owning process is gone — the kernel releases flocks on process
/// death, including SIGKILL — so removal is race-free against live
/// runs without trusting mtimes or pid liveness alone.

/// Default name prefix for executor temp directories:
/// `<prefix><pid>-<seq>`. Exposed so tests can fabricate stale dirs.
inline constexpr const char* kTempDirPrefix = ".foofah-tmp-";

/// Best-effort recursive removal of `path` (files + subdirectories).
/// Returns OK when the tree is gone afterwards (including "never
/// existed"); errors are typed kUnavailable.
Status RemoveTree(const std::string& path);

/// A uniquely named temp directory under `parent`, removed (with all
/// contents) on destruction. Holds an exclusive flock on
/// `<dir>/.lock` for its lifetime; see the ownership protocol above.
class ScopedTempDir {
 public:
  /// Creates `<parent>/<prefix><pid>-<seq>/` plus its lock file. The
  /// parent directory must exist. Failures are typed kUnavailable.
  static Result<ScopedTempDir> CreateIn(const std::string& parent,
                                        const std::string& prefix =
                                            kTempDirPrefix);

  ScopedTempDir(ScopedTempDir&& other) noexcept;
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  /// Releases the lock and removes the directory tree (best effort —
  /// a failure here is the crash the orphan reaper exists for, and the
  /// exec/temp_cleanup fault point simulates it).
  ~ScopedTempDir();

  const std::string& path() const { return path_; }

 private:
  ScopedTempDir(std::string path, int lock_fd)
      : path_(std::move(path)), lock_fd_(lock_fd) {}

  std::string path_;
  int lock_fd_ = -1;
};

/// Removes every `<prefix>*` directory directly under `parent` whose
/// lock can be acquired — i.e. whose owning process is dead. Live runs
/// (lock held) are skipped. Returns the number of directories removed;
/// never fails (a missing or unreadable parent reaps nothing).
size_t ReapOrphanedTempDirs(const std::string& parent,
                            const std::string& prefix = kTempDirPrefix);

/// Durably publishes `tmp_path` at `final_path`: fsync the temp file,
/// atomically rename it onto the final path, then fsync the parent
/// directory (both paths must be on the same filesystem — the executor
/// guarantees this by placing its temp dir next to the output). Until
/// the rename, the final path is untouched; after it, the new content
/// is complete. Failures are typed kUnavailable, with the
/// exec/output_commit fault point hit before the fsync and before the
/// rename.
Status CommitFileDurably(const std::string& tmp_path,
                         const std::string& final_path);

/// The directory component of `path` ("." when there is none), the
/// spelling used to co-locate temp dirs with their output file.
std::string DirNameOf(const std::string& path);

}  // namespace foofah

#endif  // FOOFAH_UTIL_TEMPFILE_H_
