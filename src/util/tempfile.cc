#include "util/tempfile.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/fault_injection.h"

namespace foofah {

namespace {

constexpr const char* kLockFileName = ".lock";

// Monotonic per-process counter so concurrent runs in one process get
// distinct directories without consulting the clock.
std::atomic<uint64_t> g_temp_dir_seq{0};

Status RemoveTreeImpl(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    // Not a directory: remove as a file.
    if (errno == ENOTDIR) {
      if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
    }
    return Status::Unavailable("cannot remove: " + path + ": " +
                               std::strerror(errno));
  }
  Status status;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string_view name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string child = path + "/" + std::string(name);
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) continue;
    Status removed = S_ISDIR(st.st_mode)
                         ? RemoveTreeImpl(child)
                         : (::unlink(child.c_str()) == 0 || errno == ENOENT
                                ? Status::OK()
                                : Status::Unavailable("cannot remove: " +
                                                      child + ": " +
                                                      std::strerror(errno)));
    if (!removed.ok() && status.ok()) status = removed;
  }
  ::closedir(dir);
  if (!status.ok()) return status;
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Unavailable("cannot remove: " + path + ": " +
                               std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status RemoveTree(const std::string& path) { return RemoveTreeImpl(path); }

Result<ScopedTempDir> ScopedTempDir::CreateIn(const std::string& parent,
                                              const std::string& prefix) {
  const std::string base =
      (parent.empty() ? std::string(".") : parent) + "/" + prefix +
      std::to_string(static_cast<long long>(::getpid())) + "-";
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string path =
        base + std::to_string(g_temp_dir_seq.fetch_add(1,
                                                       std::memory_order_relaxed));
    if (::mkdir(path.c_str(), 0700) != 0) {
      if (errno == EEXIST) continue;  // stale dir from a previous crash
      return Status::Unavailable("cannot create temp dir: " + path + ": " +
                                 std::strerror(errno));
    }
    std::string lock_path = path + "/" + kLockFileName;
    int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0600);
    if (fd < 0) {
      Status failed = Status::Unavailable("cannot create temp dir lock: " +
                                          lock_path + ": " +
                                          std::strerror(errno));
      ::rmdir(path.c_str());
      return failed;
    }
    // Freshly created directory: the exclusive lock cannot be contended.
    ::flock(fd, LOCK_EX | LOCK_NB);
    return ScopedTempDir(std::move(path), fd);
  }
  return Status::Unavailable("cannot create temp dir under " + parent +
                             ": too many collisions");
}

ScopedTempDir::ScopedTempDir(ScopedTempDir&& other) noexcept
    : path_(std::move(other.path_)), lock_fd_(other.lock_fd_) {
  other.path_.clear();
  other.lock_fd_ = -1;
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    this->~ScopedTempDir();
    path_ = std::move(other.path_);
    lock_fd_ = other.lock_fd_;
    other.path_.clear();
    other.lock_fd_ = -1;
  }
  return *this;
}

ScopedTempDir::~ScopedTempDir() {
  if (lock_fd_ < 0 && path_.empty()) return;
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // releases the flock
    lock_fd_ = -1;
  }
  if (path_.empty()) return;
  // Simulated crash-before-cleanup: leave the orphan for the reaper.
  if (FOOFAH_FAULT_FAIL(fault_points::kExecTempCleanup)) return;
  RemoveTreeImpl(path_);
  path_.clear();
}

size_t ReapOrphanedTempDirs(const std::string& parent,
                            const std::string& prefix) {
  DIR* dir = ::opendir(parent.empty() ? "." : parent.c_str());
  if (dir == nullptr) return 0;
  std::vector<std::string> candidates;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string_view name = entry->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    candidates.push_back((parent.empty() ? std::string(".") : parent) + "/" +
                         std::string(name));
  }
  ::closedir(dir);

  size_t removed = 0;
  for (const std::string& path : candidates) {
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) continue;
    std::string lock_path = path + "/" + kLockFileName;
    int fd = ::open(lock_path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd >= 0) {
      if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);  // lock held: the owner is alive, skip
        continue;
      }
      ::close(fd);  // lock acquired: the owner is dead
    } else if (errno != ENOENT) {
      continue;
    }
    // No lock file at all means the owner crashed between mkdir and
    // open — also an orphan.
    if (RemoveTreeImpl(path).ok()) ++removed;
  }
  return removed;
}

Status CommitFileDurably(const std::string& tmp_path,
                         const std::string& final_path) {
  if (FOOFAH_FAULT_FAIL(fault_points::kExecOutputCommit)) {
    return Status::Unavailable("output commit failed: fsync: " + tmp_path +
                               ": injected I/O failure");
  }
  int fd = ::open(tmp_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Unavailable("output commit failed: cannot reopen " +
                               tmp_path + ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    Status failed = Status::Unavailable("output commit failed: fsync: " +
                                        tmp_path + ": " +
                                        std::strerror(errno));
    ::close(fd);
    return failed;
  }
  ::close(fd);
  if (FOOFAH_FAULT_FAIL(fault_points::kExecOutputCommit)) {
    return Status::Unavailable("output commit failed: rename to " +
                               final_path + ": injected I/O failure");
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Unavailable("output commit failed: rename to " +
                               final_path + ": " + std::strerror(errno));
  }
  // Durability of the directory entry itself; the data already reached
  // disk above, so a failure here cannot lose content — best effort.
  int dfd = ::open(DirNameOf(final_path).c_str(),
                   O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

std::string DirNameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace foofah
