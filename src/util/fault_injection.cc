#include "util/fault_injection.h"

#include <algorithm>

namespace foofah {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string>* points = [] {
    auto* list = new std::vector<std::string>{
        fault_points::kTableDetachSpine,    fault_points::kTableDetachRow,
        fault_points::kRegexCompile,        fault_points::kPoolDispatch,
        fault_points::kHeuristicCacheInsert, fault_points::kHeuristicEstimate,
        fault_points::kServerAdmit,         fault_points::kServerDispatch,
        fault_points::kWranglerApply,       fault_points::kLadderRungStart,
        fault_points::kExecSpillWrite,      fault_points::kExecSpillRead,
        fault_points::kExecOutputCommit,    fault_points::kExecTempCleanup,
        fault_points::kCsvStreamWrite,
    };
    std::sort(list->begin(), list->end());
    return list;
  }();
  return *points;
}

void FaultInjector::ArmFailure(std::string_view point, uint64_t nth_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[std::string(point)];
  state.fail_at_hit = state.hits + nth_hit;
  state.fail_always = false;
}

void FaultInjector::ArmFailureAlways(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[std::string(point)];
  state.fail_at_hit = 0;
  state.fail_always = true;
}

void FaultInjector::ArmCallback(std::string_view point,
                                std::function<void()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[std::string(point)].callback =
      std::make_shared<std::function<void()>>(std::move(callback));
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  if (it == points_.end()) return;
  it->second.fail_at_hit = 0;
  it->second.fail_always = false;
  it->second.callback.reset();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

uint64_t FaultInjector::HitCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.hits;
}

bool FaultInjector::ShouldFail(const char* point) {
  std::shared_ptr<std::function<void()>> callback;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PointState& state = points_[point];
    ++state.hits;
    fail = state.fail_always ||
           (state.fail_at_hit != 0 && state.hits == state.fail_at_hit);
    callback = state.callback;
  }
  // Outside the lock: the callback may sleep (slow-heuristic tests), fire
  // a CancellationToken, or hit further fault points without deadlocking.
  if (callback != nullptr && *callback) (*callback)();
  return fail;
}

}  // namespace foofah
