#include "util/cancellation.h"

#include <algorithm>

namespace foofah {

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kExternal:
      return "external";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kNodeBudget:
      return "node_budget";
    case CancelReason::kMemoryBudget:
      return "memory_budget";
    case CancelReason::kDiskBudget:
      return "disk_budget";
  }
  return "unknown";
}

Status StatusFromCancelReason(CancelReason reason, std::string_view context) {
  auto with_context = [&context](const char* what) {
    std::string msg;
    if (!context.empty()) {
      msg.append(context);
      msg.append(": ");
    }
    msg.append(what);
    return msg;
  };
  switch (reason) {
    case CancelReason::kNone:
      return Status::OK();
    case CancelReason::kExternal:
      return Status::Cancelled(with_context("cancelled by caller"));
    case CancelReason::kDeadline:
      return Status::ResourceExhausted(with_context("deadline expired"));
    case CancelReason::kNodeBudget:
      return Status::ResourceExhausted(with_context("node budget exhausted"));
    case CancelReason::kMemoryBudget:
      return Status::ResourceExhausted(
          with_context("memory budget exhausted"));
    case CancelReason::kDiskBudget:
      return Status::ResourceExhausted(with_context("disk budget exhausted"));
  }
  return Status::Internal(with_context("unknown cancel reason"));
}

void CancellationToken::Trip(CancelReason reason, int64_t observed_ns) const {
  uint8_t expected = 0;
  if (reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                      std::memory_order_acq_rel)) {
    tripped_at_ns_.store(observed_ns, std::memory_order_release);
  }
}

void CancellationToken::TightenDeadline(Clock::time_point deadline) {
  int64_t target = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       deadline.time_since_epoch())
                       .count();
  int64_t current = deadline_ns_.load(std::memory_order_relaxed);
  while (target < current &&
         !deadline_ns_.compare_exchange_weak(current, target,
                                             std::memory_order_relaxed)) {
    // current reloaded by the failed CAS; loop until ours is not earlier.
  }
}

void CancellationToken::TightenDeadlineAfterMs(int64_t ms) {
  TightenDeadline(Clock::now() + std::chrono::milliseconds(ms));
}

bool CancellationToken::CountNode(uint64_t n) {
  uint64_t total = nodes_.fetch_add(n, std::memory_order_relaxed) + n;
  uint64_t budget = node_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && total > budget) {
    Trip(CancelReason::kNodeBudget, NowNs());
  }
  return IsCancelled();
}

bool CancellationToken::ChargeMemory(uint64_t bytes) {
  uint64_t total = memory_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t budget = memory_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && total > budget) {
    Trip(CancelReason::kMemoryBudget, NowNs());
  }
  return IsCancelled();
}

bool CancellationToken::ChargeDisk(uint64_t bytes) {
  uint64_t total = disk_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t budget = disk_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && total > budget) {
    Trip(CancelReason::kDiskBudget, NowNs());
  }
  return IsCancelled();
}

bool CancellationToken::IsCancelled() const {
  if (reason_.load(std::memory_order_acquire) != 0) return true;
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == kNoDeadline) return false;
  int64_t now = NowNs();
  if (now < deadline) return false;
  Trip(CancelReason::kDeadline, now);
  return true;
}

double CancellationToken::OvershootMs() const {
  if (reason() != CancelReason::kDeadline) return 0.0;
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  int64_t observed = tripped_at_ns_.load(std::memory_order_acquire);
  if (deadline == kNoDeadline || observed <= deadline) return 0.0;
  return static_cast<double>(observed - deadline) / 1e6;
}

}  // namespace foofah
