#include "util/arena.h"

#include <algorithm>

namespace foofah {

Arena::Arena(size_t first_block_bytes)
    : first_block_bytes_(std::max<size_t>(first_block_bytes, 64)) {}

Arena::Block& Arena::BlockFor(size_t n, size_t align) {
  // Try the current block, then any later retained block (Reset keeps
  // them), growing only when none fits.
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    size_t aligned = (block.used + align - 1) & ~(align - 1);
    if (aligned + n <= block.size) return block;
    ++current_;
  }
  size_t next_size = blocks_.empty() ? first_block_bytes_
                                     : blocks_.back().size * 2;
  next_size = std::max(next_size, n + align);
  Block block;
  block.data = std::make_unique<char[]>(next_size);
  block.size = next_size;
  bytes_reserved_ += next_size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::Alloc(size_t n, size_t align) {
  Block& block = BlockFor(n, align);
  size_t aligned = (block.used + align - 1) & ~(align - 1);
  char* p = block.data.get() + aligned;
  bytes_used_ += (aligned - block.used) + n;
  block.used = aligned + n;
  high_water_ = std::max(high_water_, bytes_used_);
  return p;
}

void Arena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  current_ = 0;
  bytes_used_ = 0;
}

}  // namespace foofah
