#ifndef FOOFAH_BASELINES_WRANGLER_EFFORT_H_
#define FOOFAH_BASELINES_WRANGLER_EFFORT_H_

#include <string>
#include <vector>

#include "scenarios/scenario.h"

namespace foofah {

/// Interaction effort for one tool on one task (Table 5's three metrics).
struct EffortMeasure {
  double seconds = 0;
  double mouse_clicks = 0;
  double keystrokes = 0;
};

/// One Table 5 row: average effort over the simulated participants.
struct UserStudyRow {
  const Scenario* scenario = nullptr;
  EffortMeasure wrangler;
  EffortMeasure foofah;

  /// Fractional interaction-time saving of Foofah vs Wrangler (the
  /// "vs Wrangler" column), in [0, 1].
  double time_saving() const {
    return wrangler.seconds > 0 ? 1.0 - foofah.seconds / wrangler.seconds
                                : 0.0;
  }
};

/// Simulates the §5.6 user study (the original used 10 graduate students,
/// which an offline reproduction cannot re-run — see DESIGN.md). The model
/// is deterministic:
///
///  Wrangler (Programming By Demonstration): the participant discovers and
///  applies each ground-truth operation through menus. Per operation:
///  menu-navigation clicks, parameter-entry keystrokes, discovery time
///  (much larger for the complex operators Fold/Unfold/Divide/Extract —
///  the "High Skill" cost), a verification scan, and a backtracking penalty
///  for complex operations (the Example 1 Unfold-before-Fill trap).
///
///  Foofah (Programming By Example): the participant selects sample rows
///  and *types the output example* — keystrokes are counted from the
///  scenario's actual 2-record example output, which is why Foofah trades
///  fewer clicks for more typing, as the paper observes — then waits for
///  synthesis and inspects the result.
///
/// Participants differ by a deterministic speed factor. Returned rows are
/// the per-task averages in Table 5 order.
std::vector<UserStudyRow> SimulateUserStudy(int participants = 5);

/// Renders rows in the layout of Table 5.
std::string FormatUserStudyTable(const std::vector<UserStudyRow>& rows);

}  // namespace foofah

#endif  // FOOFAH_BASELINES_WRANGLER_EFFORT_H_
