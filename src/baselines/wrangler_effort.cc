#include "baselines/wrangler_effort.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "scenarios/corpus.h"

namespace foofah {

namespace {

bool IsComplexOp(OpCode op) {
  return op == OpCode::kFold || op == OpCode::kUnfold ||
         op == OpCode::kDivide || op == OpCode::kExtract;
}

// ---------------------------------------------------------------------------
// Model constants (seconds / counts). Calibrated so the simulated Table 5
// lands in the paper's magnitude range: Wrangler ~70-600 s per task, Foofah
// ~40-150 s, ~60% average time saving, biggest savings on complex tasks.
// ---------------------------------------------------------------------------

// Wrangler: orientation (reading the data, skimming the operator menu).
constexpr double kWranglerBaseSeconds = 60;
// Discovering + choosing an operator ("High Skill"): complex operators like
// Unfold take far longer to understand and parameterize.
constexpr double kSimpleOpSeconds = 20;
constexpr double kComplexOpSeconds = 75;
// Backtracking penalty when a complex operator interacts with the rest of
// the script (the Unfold-before-Fill trap of Example 1).
constexpr double kComplexLengthySeconds = 110;
constexpr double kLengthySeconds = 25;
constexpr double kSecondsPerClick = 1.1;
constexpr double kSecondsPerKey = 0.45;
constexpr double kWranglerBaseClicks = 10;
constexpr double kSimpleOpClicks = 8;
constexpr double kComplexOpClicks = 22;
constexpr double kLengthyClickFactor = 1.5;

// Foofah: loading the sample and pressing synthesize.
constexpr double kFoofahBaseSeconds = 20;
constexpr double kFoofahInspectSeconds = 10;
constexpr double kFoofahSecondsPerKey = 0.5;
constexpr double kFoofahSecondsPerClick = 1.2;
constexpr double kFoofahSynthesisWaitSeconds = 3;
constexpr double kFoofahBaseClicks = 8;
constexpr double kFoofahClicksPerInputRow = 2;
// Invoking the tool and describing the output shape (column count, header
// naming) costs keystrokes beyond the example cells themselves.
constexpr double kFoofahBaseKeystrokes = 12;

double WranglerKeystrokes(const Program& program) {
  double keys = 0;
  for (const Operation& op : program.operations()) {
    keys += 4;  // Opening the parameter fields / confirming.
    keys += 2;  // Column index digits.
    if (op.col2 >= 0) keys += 2;
    keys += static_cast<double>(op.text.size());
  }
  return keys;
}

EffortMeasure WranglerEffort(const Scenario& scenario) {
  EffortMeasure effort;
  const Program& program = *scenario.truth();
  bool lengthy = scenario.tags().lengthy;
  bool any_complex = false;

  effort.mouse_clicks = kWranglerBaseClicks;
  double op_seconds = 0;
  for (const Operation& op : program.operations()) {
    bool complex = IsComplexOp(op.op);
    any_complex = any_complex || complex;
    effort.mouse_clicks += complex ? kComplexOpClicks : kSimpleOpClicks;
    op_seconds += complex ? kComplexOpSeconds : kSimpleOpSeconds;
  }
  if (lengthy) effort.mouse_clicks *= kLengthyClickFactor;
  effort.keystrokes = WranglerKeystrokes(program);

  effort.seconds = kWranglerBaseSeconds + op_seconds +
                   effort.mouse_clicks * kSecondsPerClick +
                   effort.keystrokes * kSecondsPerKey;
  if (lengthy) effort.seconds += kLengthySeconds;
  if (lengthy && any_complex) effort.seconds += kComplexLengthySeconds;
  return effort;
}

EffortMeasure FoofahEffort(const Scenario& scenario) {
  EffortMeasure effort;
  int records = std::min(2, scenario.total_records());
  Result<ExamplePair> example = scenario.MakeExample(records);
  // User-study scenarios always have at least one record.
  const Table& out = example->output;
  const Table& in = example->input;

  // Typing the output example: its characters plus one separator keystroke
  // per cell and a newline per row.
  double keys = kFoofahBaseKeystrokes;
  for (const Table::Row& row : out.rows()) {
    for (const std::string& cell : row) {
      keys += static_cast<double>(cell.size()) + 1;
    }
    keys += 1;
  }
  effort.keystrokes = keys;
  effort.mouse_clicks = kFoofahBaseClicks +
                        kFoofahClicksPerInputRow *
                            static_cast<double>(in.num_rows());
  effort.seconds = kFoofahBaseSeconds +
                   effort.keystrokes * kFoofahSecondsPerKey +
                   effort.mouse_clicks * kFoofahSecondsPerClick +
                   kFoofahSynthesisWaitSeconds + kFoofahInspectSeconds;
  return effort;
}

}  // namespace

std::vector<UserStudyRow> SimulateUserStudy(int participants) {
  std::vector<UserStudyRow> rows;
  for (const Scenario* scenario : UserStudyScenarios()) {
    UserStudyRow row;
    row.scenario = scenario;

    EffortMeasure wrangler = WranglerEffort(*scenario);
    EffortMeasure foofah = FoofahEffort(*scenario);

    // Participants differ by a deterministic speed factor, mean 1.0; the
    // reported row is the across-participant average.
    double seconds_w = 0;
    double seconds_f = 0;
    double clicks_w = 0;
    double clicks_f = 0;
    for (int p = 0; p < participants; ++p) {
      double speed = 1.0 + 0.1 * (p - (participants - 1) / 2.0);
      seconds_w += wrangler.seconds * speed;
      seconds_f += foofah.seconds * speed;
      // Slower participants also click around more while searching menus.
      clicks_w += wrangler.mouse_clicks * (0.9 + 0.2 * (speed - 1.0) + 0.1);
      clicks_f += foofah.mouse_clicks;
    }
    double n = static_cast<double>(std::max(participants, 1));
    row.wrangler = wrangler;
    row.wrangler.seconds = seconds_w / n;
    row.wrangler.mouse_clicks = clicks_w / n;
    row.foofah = foofah;
    row.foofah.seconds = seconds_f / n;
    row.foofah.mouse_clicks = clicks_f / n;
    rows.push_back(row);
  }
  return rows;
}

std::string FormatUserStudyTable(const std::vector<UserStudyRow>& rows) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %-8s %-6s | %8s %7s %7s | %8s %9s %7s %7s\n",
                "Test", "Complex", ">=4Ops", "W.Time", "W.Mouse", "W.Key",
                "F.Time", "vs Wrang.", "F.Mouse", "F.Key");
  out << line;
  for (const UserStudyRow& row : rows) {
    const ScenarioTags& tags = row.scenario->tags();
    std::snprintf(
        line, sizeof(line),
        "%-14s %-8s %-6s | %8.1f %7.1f %7.1f | %8.1f %8.1f%% %7.1f %7.1f\n",
        tags.user_study_id.c_str(), tags.complex_ops ? "Yes" : "No",
        tags.lengthy ? "Yes" : "No", row.wrangler.seconds,
        row.wrangler.mouse_clicks, row.wrangler.keystrokes,
        row.foofah.seconds, row.time_saving() * 100.0,
        row.foofah.mouse_clicks, row.foofah.keystrokes);
    out << line;
  }
  return out.str();
}

}  // namespace foofah
