#ifndef FOOFAH_BASELINES_PROGFROMEX_H_
#define FOOFAH_BASELINES_PROGFROMEX_H_

#include <string>

#include "table/table.h"

namespace foofah {

/// Outcome of a baseline learner on one task.
struct BaselineResult {
  bool success = false;
  /// Why the learner failed / which rules it used (for experiment logs).
  std::string detail;
};

/// Simplified reimplementation of ProgFromEx (Harris & Gulwani, PLDI'11;
/// §5.7.1) for the Table 6 comparison. The real system learns *component
/// programs* — filter programs (cell mapping condition + geometric
/// sequencer) and associative programs — that COPY cells from the input
/// grid to the output grid; it cannot modify cell contents.
///
/// Our model captures exactly that expressiveness boundary:
///  - Every non-empty output cell must appear verbatim as an input cell
///    (hence 0% on syntactic transformation tasks, as in the paper).
///  - Each output column must be derivable by one sequencer rule:
///      A. a fixed input column read top-down (non-decreasing rows; repeats
///         allowed, which covers Fill-like associative copies),
///      B. a fixed input row read left-to-right (covers Transpose),
///      C. a strictly increasing row-major traversal of the whole grid
///         (covers Fold/Unfold-style reshapes).
///    Empty output cells are unconstrained (they need no copied content).
///
/// Following the paper's own methodology (the authors hand-simulate the
/// closed-source comparators on shared benchmarks), success is judged on
/// the full raw-data pair rather than by learning + generalizing.
BaselineResult ProgFromExSolve(const Table& input, const Table& output);

/// Simplified reimplementation of FlashRelate (Barowy et al., PLDI'15;
/// §5.7.2): output-example-only extraction of row-structured relations
/// with exact content matching. Same content-copy limitation as
/// ProgFromEx, but only sequencer rules A and B — its anchored
/// geometric-constraint patterns extract row-shaped regions and cannot
/// express the free row-major pivots of rule C, which is why it trails
/// ProgFromEx and Foofah on layout tasks in Table 6.
BaselineResult FlashRelateSolve(const Table& input, const Table& output);

}  // namespace foofah

#endif  // FOOFAH_BASELINES_PROGFROMEX_H_
