#include "baselines/progfromex.h"

#include <set>
#include <string>
#include <vector>

namespace foofah {

namespace {

/// Checks sequencer rule A for output column `col` with source input column
/// `src_col`: every non-empty output cell must match the input column at
/// non-decreasing row positions (repeats allowed — associative copies).
bool RuleColumnDown(const Table& input, const Table& output, size_t col,
                    size_t src_col) {
  size_t cursor = 0;
  for (size_t r = 0; r < output.num_rows(); ++r) {
    const std::string& want = output.cell(r, col);
    if (want.empty()) continue;
    size_t ir = cursor;
    // Allow staying on the current row (repeat) or advancing.
    while (ir < input.num_rows() && input.cell(ir, src_col) != want) {
      ++ir;
    }
    if (ir >= input.num_rows()) return false;
    cursor = ir;
  }
  return true;
}

/// Rule B: fixed input row `src_row`, non-decreasing columns.
bool RuleRowAcross(const Table& input, const Table& output, size_t col,
                   size_t src_row) {
  size_t cursor = 0;
  for (size_t r = 0; r < output.num_rows(); ++r) {
    const std::string& want = output.cell(r, col);
    if (want.empty()) continue;
    size_t ic = cursor;
    while (ic < input.num_cols() && input.cell(src_row, ic) != want) {
      ++ic;
    }
    if (ic >= input.num_cols()) return false;
    cursor = ic;
  }
  return true;
}

/// Rule B': cyclic read of a fixed input row — the column cursor may wrap
/// around, modeling ProgFromEx's *associative programs*, which map one
/// input cell to periodically repeating output locations (e.g., the year
/// header row of a folded matrix repeating once per country).
bool RuleRowCyclic(const Table& input, const Table& output, size_t col,
                   size_t src_row) {
  size_t ncols = input.num_cols();
  if (ncols == 0) return false;
  size_t cursor = 0;
  for (size_t r = 0; r < output.num_rows(); ++r) {
    const std::string& want = output.cell(r, col);
    if (want.empty()) continue;
    size_t tried = 0;
    size_t ic = cursor;
    while (tried < ncols && input.cell(src_row, ic) != want) {
      ic = (ic + 1) % ncols;
      ++tried;
    }
    if (tried >= ncols) return false;
    cursor = ic;
  }
  return true;
}

/// Rule C: strictly increasing row-major traversal of the whole input grid.
bool RuleRowMajor(const Table& input, const Table& output, size_t col) {
  size_t ncols = input.num_cols();
  size_t limit = input.num_rows() * ncols;
  size_t cursor = 0;  // Next row-major position allowed.
  for (size_t r = 0; r < output.num_rows(); ++r) {
    const std::string& want = output.cell(r, col);
    if (want.empty()) continue;
    size_t pos = cursor;
    while (pos < limit && input.cell(pos / ncols, pos % ncols) != want) {
      ++pos;
    }
    if (pos >= limit) return false;
    cursor = pos + 1;  // Strictly increasing.
  }
  return true;
}

/// All non-empty output cells must exist verbatim in the input (the shared
/// content-copy limitation of both baselines).
bool AllContentPresent(const Table& input, const Table& output,
                       std::string* missing) {
  std::set<std::string> contents;
  for (const Table::Row& row : input.rows()) {
    for (const std::string& cell : row) contents.insert(cell);
  }
  for (size_t r = 0; r < output.num_rows(); ++r) {
    for (size_t c = 0; c < output.num_cols(); ++c) {
      const std::string& cell = output.cell(r, c);
      if (!cell.empty() && contents.count(cell) == 0) {
        *missing = cell;
        return false;
      }
    }
  }
  return true;
}

BaselineResult Solve(const Table& input, const Table& output,
                     bool allow_row_major) {
  BaselineResult result;
  std::string missing;
  if (!AllContentPresent(input, output, &missing)) {
    result.detail = "syntactic content \"" + missing +
                    "\" cannot be produced by copying cells";
    return result;
  }
  if (output.num_rows() == 0) {
    result.success = true;
    result.detail = "empty output";
    return result;
  }
  for (size_t col = 0; col < output.num_cols(); ++col) {
    bool satisfied = false;
    for (size_t src_col = 0; !satisfied && src_col < input.num_cols();
         ++src_col) {
      satisfied = RuleColumnDown(input, output, col, src_col);
    }
    for (size_t src_row = 0; !satisfied && src_row < input.num_rows();
         ++src_row) {
      satisfied = RuleRowAcross(input, output, col, src_row);
    }
    if (allow_row_major) {  // ProgFromEx-only capabilities.
      for (size_t src_row = 0; !satisfied && src_row < input.num_rows();
           ++src_row) {
        satisfied = RuleRowCyclic(input, output, col, src_row);
      }
      if (!satisfied) satisfied = RuleRowMajor(input, output, col);
    }
    if (!satisfied) {
      result.detail =
          "no sequencer covers output column " + std::to_string(col);
      return result;
    }
  }
  result.success = true;
  result.detail = "cell-mapping program found";
  return result;
}

}  // namespace

BaselineResult ProgFromExSolve(const Table& input, const Table& output) {
  return Solve(input, output, /*allow_row_major=*/true);
}

BaselineResult FlashRelateSolve(const Table& input, const Table& output) {
  return Solve(input, output, /*allow_row_major=*/false);
}

}  // namespace foofah
