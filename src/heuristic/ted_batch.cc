#include "heuristic/ted_batch.h"

#include <algorithm>
#include <array>
#include <tuple>
#include <utility>

#include "heuristic/ted.h"
#include "util/cancellation.h"

namespace foofah {

namespace {

/// Coordinate step of a pattern: how (src, dst) advance from one op in the
/// batch to the next. A pattern applies to ops with a src, a dst, or both.
struct PatternSpec {
  GeometricPattern pattern;
  bool has_src;
  bool has_dst;
  int src_drow, src_dcol;
  int dst_drow, dst_dcol;
};

constexpr std::array<PatternSpec, 10> kPatterns = {{
    // Table 4, in order.
    {GeometricPattern::kHorizontalToHorizontal, true, true, 0, 1, 0, 1},
    {GeometricPattern::kHorizontalToVertical, true, true, 0, 1, 1, 0},
    {GeometricPattern::kVerticalToHorizontal, true, true, 1, 0, 0, 1},
    {GeometricPattern::kVerticalToVertical, true, true, 1, 0, 1, 0},
    {GeometricPattern::kOneToHorizontal, true, true, 0, 0, 0, 1},
    {GeometricPattern::kOneToVertical, true, true, 0, 0, 1, 0},
    {GeometricPattern::kRemoveHorizontal, true, false, 0, 1, 0, 0},
    {GeometricPattern::kRemoveVertical, true, false, 1, 0, 0, 0},
    // Extension: Adds batch like Removes, over dst coordinates.
    {GeometricPattern::kAddHorizontal, false, true, 0, 0, 0, 1},
    {GeometricPattern::kAddVertical, false, true, 0, 0, 1, 0},
}};

using CoordKey = std::tuple<int, int, int, int>;  // (src_row, src_col, dst_row, dst_col)

CoordKey KeyOf(const EditOp& op) {
  return {op.src_row, op.src_col, op.dst_row, op.dst_col};
}

CoordKey Advance(const CoordKey& key, const PatternSpec& spec, int sign) {
  auto [sr, sc, dr, dc] = key;
  return {sr + sign * spec.src_drow, sc + sign * spec.src_dcol,
          dr + sign * spec.dst_drow, dc + sign * spec.dst_dcol};
}

bool PatternApplies(const PatternSpec& spec, const EditOp& op) {
  bool op_has_src = op.type != EditType::kAdd;
  bool op_has_dst = op.type != EditType::kDelete;
  if (spec.has_src != op_has_src) return false;
  if (spec.has_dst != op_has_dst) return false;
  // "One to X" patterns keep the src fixed; a fixed-point step on BOTH
  // sides would chain an op with itself, which is meaningless, so patterns
  // always advance at least one side (all specs above do).
  return true;
}

}  // namespace

TedBatchResult BatchEditPath(const EditPath& path,
                             const CancellationToken* cancel) {
  TedBatchResult result;
  if (path.empty()) return result;

  // Line 3: group ops by edit type (an op batches only with ops of its own
  // type: "Move should not be in the same batch as Drop"). Indexed by the
  // contiguous EditType values, counted first so each group allocates
  // exactly once; iteration below follows enum order, as the tree map
  // this replaced did.
  std::array<std::vector<size_t>, 4> by_type;
  {
    std::array<size_t, 4> counts{};
    for (const EditOp& op : path) ++counts[static_cast<size_t>(op.type)];
    for (size_t t = 0; t < by_type.size(); ++t) by_type[t].reserve(counts[t]);
  }
  for (size_t i = 0; i < path.size(); ++i) {
    by_type[static_cast<size_t>(path[i].type)].push_back(i);
  }

  // Lines 4–6: candidate batches = maximal chains under each pattern.
  std::vector<EditBatch> candidates;
  for (const std::vector<size_t>& indices : by_type) {
    if (indices.empty()) continue;
    // Coordinate index for this type group, built ONCE — it does not
    // depend on the pattern, and a node-per-op tree rebuilt inside the
    // pattern loop dominated the allocation profile of every heuristic
    // estimate on the search's hot path. Sorted flat pairs; on a
    // duplicate key the earliest op wins, exactly as map::emplace did.
    std::vector<std::pair<CoordKey, size_t>> by_key;
    by_key.reserve(indices.size());
    for (size_t i : indices) by_key.emplace_back(KeyOf(path[i]), i);
    std::stable_sort(
        by_key.begin(), by_key.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    by_key.erase(std::unique(by_key.begin(), by_key.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 by_key.end());
    auto find_key = [&by_key](const CoordKey& key) -> const size_t* {
      auto it = std::lower_bound(
          by_key.begin(), by_key.end(), key,
          [](const auto& entry, const CoordKey& k) { return entry.first < k; });
      if (it == by_key.end() || it->first != key) return nullptr;
      return &it->second;
    };

    for (const PatternSpec& spec : kPatterns) {
      // Per-pattern poll: each pattern's chain scan is O(group size * log),
      // the costliest indivisible step of the batching, so checking here
      // bounds the deadline overshoot to one scan.
      if (cancel != nullptr && cancel->IsCancelled()) {
        result.cost = kInfiniteCost;
        result.batches.clear();
        return result;
      }
      if (!PatternApplies(spec, path[indices.front()])) continue;
      for (size_t i : indices) {
        CoordKey key = KeyOf(path[i]);
        // Chain heads only: no predecessor under this pattern.
        if (find_key(Advance(key, spec, -1)) != nullptr) continue;
        EditBatch chain;
        chain.pattern = spec.pattern;
        CoordKey cursor = key;
        const size_t* hit = find_key(cursor);
        while (hit != nullptr) {
          chain.op_indices.push_back(*hit);
          cursor = Advance(cursor, spec, +1);
          hit = find_key(cursor);
        }
        if (chain.op_indices.size() >= 2) candidates.push_back(std::move(chain));
      }
    }
  }

  // Lines 7–11: repeatedly take the largest candidate disjoint from the
  // ops already covered. Stable sort keeps Table 4 order as tie-breaker.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const EditBatch& a, const EditBatch& b) {
                     return a.op_indices.size() > b.op_indices.size();
                   });
  std::vector<bool> covered(path.size(), false);
  for (EditBatch& candidate : candidates) {
    bool disjoint = true;
    for (size_t i : candidate.op_indices) {
      if (covered[i]) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    for (size_t i : candidate.op_indices) covered[i] = true;
    result.batches.push_back(std::move(candidate));
  }

  // Singleton batches guarantee the greedy cover always completes. Every
  // multi-op chain outranks every singleton in the sort above, so covering
  // the leftovers afterwards — in the same type-group-then-index order the
  // sorted candidate list would have offered them — yields the identical
  // cover without materializing a one-element batch per op up front. The
  // pattern of a singleton is immaterial; pick by op shape for clarity.
  for (const std::vector<size_t>& indices : by_type) {
    for (size_t i : indices) {
      if (covered[i]) continue;
      EditBatch single;
      single.pattern = path[i].type == EditType::kAdd
                           ? GeometricPattern::kAddHorizontal
                       : path[i].type == EditType::kDelete
                           ? GeometricPattern::kRemoveHorizontal
                           : GeometricPattern::kHorizontalToHorizontal;
      single.op_indices = {i};
      result.batches.push_back(std::move(single));
    }
  }

  // Lines 12–17: final score = sum of mean op costs per batch.
  for (const EditBatch& batch : result.batches) {
    double sum = 0;
    for (size_t i : batch.op_indices) sum += path[i].cost;
    result.cost += sum / static_cast<double>(batch.op_indices.size());
  }
  return result;
}

double TedBatchCost(const Table& input, const Table& output,
                    const CancellationToken* cancel) {
  TedResult ted = GreedyTed(input, output, cancel);
  if (ted.cost == kInfiniteCost) return kInfiniteCost;
  return BatchEditPath(ted.path, cancel).cost;
}

}  // namespace foofah
