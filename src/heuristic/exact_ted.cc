#include "heuristic/exact_ted.h"

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "heuristic/ted.h"

namespace foofah {

namespace {

struct FlatCell {
  int row;
  int col;
  const std::string* content;
};

std::vector<FlatCell> Flatten(const Table& t) {
  static const std::string kEmpty;
  std::vector<FlatCell> cells;
  int nrows = static_cast<int>(t.num_rows());
  int ncols = static_cast<int>(t.num_cols());
  cells.reserve(static_cast<size_t>(nrows) * ncols);
  for (int r = 0; r < nrows; ++r) {
    // Zero-copy row view into the shared CoW storage (see ted.cc).
    const Table::Row& row = t.row(static_cast<size_t>(r));
    int stored = static_cast<int>(row.size());
    for (int c = 0; c < ncols; ++c) {
      cells.push_back(FlatCell{r, c, c < stored ? &row[c] : &kEmpty});
    }
  }
  return cells;
}

}  // namespace

Result<double> ExactTed(const Table& input, const Table& output) {
  std::vector<FlatCell> in = Flatten(input);
  std::vector<FlatCell> out = Flatten(output);
  if (out.size() > kMaxExactTedOutputCells) {
    return Status::InvalidArgument(
        "ExactTed: output table too large for exact computation");
  }
  const size_t m = in.size();
  const size_t n = out.size();

  // Algorithm 4 processes input cells u_1..u_m in order; each is either
  // Transformed (+Moved) to a distinct unformulated output cell or Deleted;
  // remaining output cells are then Added. Dijkstra over states
  // (next input index, set of formulated outputs); costs are non-negative.
  using State = uint64_t;  // (index << n) | mask
  auto pack = [n](size_t i, uint32_t mask) -> State {
    return (static_cast<uint64_t>(i) << n) | mask;
  };

  std::unordered_map<State, double> dist;
  using QueueItem = std::pair<double, State>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> open;
  dist[pack(0, 0)] = 0;
  open.emplace(0.0, pack(0, 0));

  double best = kInfiniteCost;
  const uint32_t full_mask =
      n >= 32 ? 0xffffffffu : ((1u << n) - 1);

  while (!open.empty()) {
    auto [cost, state] = open.top();
    open.pop();
    size_t i = static_cast<size_t>(state >> n);
    uint32_t mask = static_cast<uint32_t>(state & full_mask);
    auto it = dist.find(state);
    if (it != dist.end() && cost > it->second) continue;  // Stale entry.

    if (i == m) {
      // Complete the path with Adds for unformulated outputs. Add of a
      // non-empty cell is infeasible (infinite cost).
      double total = cost;
      for (size_t j = 0; j < n; ++j) {
        if (mask & (1u << j)) continue;
        if (!out[j].content->empty()) {
          total = kInfiniteCost;
          break;
        }
        total += 1;
      }
      if (total < best) best = total;
      continue;
    }

    auto relax = [&](State next, double next_cost) {
      auto [entry, inserted] = dist.try_emplace(next, next_cost);
      if (!inserted && entry->second <= next_cost) return;
      entry->second = next_cost;
      open.emplace(next_cost, next);
    };

    // Delete u_i.
    relax(pack(i + 1, mask), cost + 1);
    // Transform u_i into each unformulated output cell.
    for (size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) continue;
      double pair_cost = TransformSequenceCost(
          *in[i].content, in[i].row, in[i].col, *out[j].content, out[j].row,
          out[j].col);
      if (pair_cost == kInfiniteCost) continue;
      relax(pack(i + 1, mask | (1u << j)), cost + pair_cost);
    }
  }
  return best;
}

}  // namespace foofah
