#include "heuristic/ted.h"

#include <vector>

#include "util/cancellation.h"
#include "util/string_util.h"

namespace foofah {

namespace {

/// A cell flattened out of its table, remembering its coordinates.
struct Cell {
  int row;
  int col;
  const std::string* content;
};

std::vector<Cell> Flatten(const Table& t) {
  static const std::string kEmpty;
  std::vector<Cell> cells;
  int nrows = static_cast<int>(t.num_rows());
  int ncols = static_cast<int>(t.num_cols());
  cells.reserve(static_cast<size_t>(nrows) * ncols);
  for (int r = 0; r < nrows; ++r) {
    // Zero-copy row view into the (possibly shared) CoW storage: one
    // bounds decision per row instead of two per cell(r, c) call — this
    // flattening fronts every TED estimate on the search's hot path.
    const Table::Row& row = t.row(static_cast<size_t>(r));
    int stored = static_cast<int>(row.size());
    for (int c = 0; c < ncols; ++c) {
      cells.push_back(Cell{r, c, c < stored ? &row[c] : &kEmpty});
    }
  }
  return cells;
}

// Appends the Transform and/or Move ops for matching `src` to `dst` to
// `path`. Caller guarantees the pair cost is finite.
void AppendTransformSequence(const Cell& src, const Cell& dst,
                             EditPath* path) {
  if (*src.content != *dst.content) {
    EditOp op;
    op.type = EditType::kTransform;
    op.src_row = src.row;
    op.src_col = src.col;
    op.dst_row = dst.row;
    op.dst_col = dst.col;
    path->push_back(op);
  }
  if (src.row != dst.row || src.col != dst.col) {
    EditOp op;
    op.type = EditType::kMove;
    op.src_row = src.row;
    op.src_col = src.col;
    op.dst_row = dst.row;
    op.dst_col = dst.col;
    path->push_back(op);
  }
}

}  // namespace

double TransformSequenceCost(const std::string& src, int src_row, int src_col,
                             const std::string& dst, int dst_row,
                             int dst_col) {
  double cost = 0;
  if (src != dst) {
    // A Transform may only reuse information already in the cell: the paper
    // assigns infinite cost without a string containment relationship. An
    // empty cell on exactly one side has no content in common with the
    // other, so it is likewise infeasible.
    if (src.empty() || dst.empty() || !StringContainment(src, dst)) {
      return kInfiniteCost;
    }
    cost += 1;
  }
  if (src_row != dst_row || src_col != dst_col) cost += 1;
  return cost;
}

TedResult GreedyTed(const Table& input, const Table& output,
                    const CancellationToken* cancel) {
  TedResult result;
  std::vector<Cell> in_cells = Flatten(input);
  std::vector<Cell> out_cells = Flatten(output);
  std::vector<bool> used(in_cells.size(), false);
  // Most output cells contribute one edit op (plus Deletes for unused
  // input); reserving the common case keeps the hot path to one growth
  // reallocation at most.
  result.path.reserve(out_cells.size());

  // Poll the token on a stride: each output cell costs an O(input cells)
  // scan, so checking every 8th keeps both the overshoot and the polling
  // overhead (one clock read per check) negligible.
  size_t polls = 0;
  for (const Cell& out : out_cells) {
    if (cancel != nullptr && (++polls & 0x7) == 0 && cancel->IsCancelled()) {
      result.cost = kInfiniteCost;
      return result;
    }
    // Pass 1 (Algorithm 1 lines 8–12): cheapest sequence from an unused
    // input cell, scanning in row-major order so ties pick the earlier cell.
    double best_cost = kInfiniteCost;
    int best_index = -1;
    for (size_t i = 0; i < in_cells.size(); ++i) {
      if (used[i]) continue;
      const Cell& in = in_cells[i];
      double cost = TransformSequenceCost(*in.content, in.row, in.col,
                                          *out.content, out.row, out.col);
      if (cost < best_cost) {
        best_cost = cost;
        best_index = static_cast<int>(i);
        if (cost == 0) break;  // Cannot do better than an exact match.
      }
    }
    // Add is only feasible for empty output cells (infinite otherwise):
    // transformations must not introduce new information (§4.2.1). A
    // strict improvement is required, so transforms win ties, matching the
    // pseudocode's argmin over a list with transforms first.
    bool use_add = out.content->empty() && 1.0 < best_cost;

    if (!use_add && best_cost == kInfiniteCost) {
      // Fallback (lines 13–18): allow already-used input cells.
      for (size_t i = 0; i < in_cells.size(); ++i) {
        if (!used[i]) continue;
        const Cell& in = in_cells[i];
        double cost = TransformSequenceCost(*in.content, in.row, in.col,
                                            *out.content, out.row, out.col);
        if (cost < best_cost) {
          best_cost = cost;
          best_index = static_cast<int>(i);
          if (cost == 0) break;
        }
      }
      // Re-offer Add against the fallback candidates.
      use_add = out.content->empty() && 1.0 < best_cost;
    }

    if (use_add) {
      EditOp op;
      op.type = EditType::kAdd;
      op.dst_row = out.row;
      op.dst_col = out.col;
      result.path.push_back(op);
      result.cost += 1;
      continue;
    }
    if (best_index < 0 || best_cost == kInfiniteCost) {
      // No way to formulate this output cell: the whole path is infeasible.
      result.cost = kInfiniteCost;
      return result;
    }
    const Cell& in = in_cells[best_index];
    AppendTransformSequence(in, out, &result.path);
    result.cost += best_cost;
    used[best_index] = true;
  }

  // Step 2 (lines 20–22): delete every input cell not used by the path.
  for (size_t i = 0; i < in_cells.size(); ++i) {
    if (used[i]) continue;
    EditOp op;
    op.type = EditType::kDelete;
    op.src_row = in_cells[i].row;
    op.src_col = in_cells[i].col;
    result.path.push_back(op);
    result.cost += 1;
  }
  return result;
}

}  // namespace foofah
