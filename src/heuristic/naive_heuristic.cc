#include "heuristic/naive_heuristic.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace foofah {

namespace {

using Row = std::vector<std::string>;

Row RowOf(const Table& t, size_t r) {
  Row row;
  size_t ncols = t.num_cols();
  row.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) row.push_back(t.cell(r, c));
  return row;
}

// Multiset intersection size of two rows' cell contents.
size_t CommonCells(const Row& a, const Row& b) {
  std::map<std::string, int> counts;
  for (const std::string& cell : a) ++counts[cell];
  size_t common = 0;
  for (const std::string& cell : b) {
    auto it = counts.find(cell);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++common;
    }
  }
  return common;
}

// Table 10 one-to-one rules, evaluated on row k of state (ti) vs goal (to).
double OneToOneRowCost(const Row& ti, const Row& to) {
  double cost = 0;

  // Drop/Copy: cells present on one side but not the other indicate column
  // additions/removals (Table 10's "absolute difference of common cells").
  size_t common = CommonCells(ti, to);
  if (ti.size() != common || to.size() != common) cost += 1;

  // Move: cells present in both rows but at different positions.
  size_t moved = 0;
  for (size_t c = 0; c < std::min(ti.size(), to.size()); ++c) {
    if (ti[c] != to[c] &&
        std::find(to.begin(), to.end(), ti[c]) != to.end() &&
        !ti[c].empty()) {
      ++moved;
    }
  }
  if (moved > 0) cost += 1;

  // Split/Extract: cells of the goal row absent from the state row but
  // appearing as substrings of state cells.
  size_t extracted = 0;
  for (const std::string& cell : to) {
    if (cell.empty()) continue;
    if (std::find(ti.begin(), ti.end(), cell) != ti.end()) continue;
    for (const std::string& source : ti) {
      if (source.size() > cell.size() && Contains(source, cell)) {
        ++extracted;
        break;
      }
    }
  }
  if (extracted > 0) cost += 1;

  // Merge: cells of the goal row absent from the state row of which state
  // cells are substrings.
  size_t merged = 0;
  for (const std::string& cell : to) {
    if (cell.empty()) continue;
    if (std::find(ti.begin(), ti.end(), cell) != ti.end()) continue;
    for (const std::string& source : ti) {
      if (!source.empty() && source.size() < cell.size() &&
          Contains(cell, source)) {
        ++merged;
        break;
      }
    }
  }
  if (merged > 0) cost += 1;

  return cost;
}

// True when some goal cell has no exact content match anywhere in `state`
// (Algorithm 3's existSyntacticalHeterogeneities).
bool SyntacticHeterogeneity(const Table& state, const Table& goal) {
  std::set<std::string> contents;
  for (const Table::Row& row : state.rows()) {
    for (const std::string& cell : row) contents.insert(cell);
  }
  for (size_t r = 0; r < goal.num_rows(); ++r) {
    for (size_t c = 0; c < goal.num_cols(); ++c) {
      const std::string& cell = goal.cell(r, c);
      if (!cell.empty() && contents.count(cell) == 0) return true;
    }
  }
  return false;
}

}  // namespace

double NaiveRuleHeuristic(const Table& state, const Table& goal) {
  if (state.ContentEquals(goal)) return 0;
  size_t hi = state.num_rows();
  size_t wi = state.num_cols();
  size_t ho = goal.num_rows();
  size_t wo = goal.num_cols();
  if (hi == 0 || ho == 0) return 1;

  if (hi == ho) {
    // One-to-one case: per-row rule sums, median over rows (Algorithm 3
    // lines 2–7).
    std::vector<double> row_costs;
    row_costs.reserve(hi);
    for (size_t r = 0; r < hi; ++r) {
      row_costs.push_back(OneToOneRowCost(RowOf(state, r), RowOf(goal, r)));
    }
    std::sort(row_costs.begin(), row_costs.end());
    double median = row_costs[row_costs.size() / 2];
    // A zero estimate for unequal tables would make the heuristic blind;
    // at least one operation is needed.
    return std::max(median, 1.0);
  }

  // Many-to-many case: shape rules of Table 11 vote on the layout operator.
  double cost = 0;
  bool matched = false;
  if (hi > 0 && ho % hi == 0 && ho > hi) {
    matched = true;  // Fold: output height a multiple of input height.
    cost += 1;
  } else if (ho < hi && wo > wi) {
    matched = true;  // Unfold: fewer rows, more columns.
    cost += 1;
  } else if (ho != hi && wo == wi) {
    matched = true;  // Delete: height changed, width preserved.
    cost += 1;
  } else if (hi == wo && ho == wi) {
    matched = true;  // Transpose: shape flipped.
    cost += 1;
  } else if (ho > 0 && hi % ho == 0 && hi > ho) {
    matched = true;  // Wrap: input height a multiple of output height.
    cost += 1;
  }
  if (!matched) {
    // No single layout rule matches: assume two many-to-many operators
    // (Appendix C: "we simply assume that two many-to-many operators are
    // used").
    cost += 2;
  }
  if (SyntacticHeterogeneity(state, goal)) cost += 1;
  return cost;
}

}  // namespace foofah
