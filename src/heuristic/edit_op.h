#ifndef FOOFAH_HEURISTIC_EDIT_OP_H_
#define FOOFAH_HEURISTIC_EDIT_OP_H_

#include <limits>
#include <string>
#include <vector>

namespace foofah {

/// Cell-level table edit operators (§4.2.1, Table 3). These are *not* the
/// Potter's Wheel transformation operators: they are the fine-grained edits
/// whose minimum total cost defines Table Edit Distance.
enum class EditType {
  kAdd = 0,    ///< Add a cell to the output table.
  kDelete,     ///< Remove a cell of the input table.
  kMove,       ///< Move a cell from input coordinates to output coordinates.
  kTransform,  ///< Syntactically transform a cell's content.
};

/// "add" / "delete" / "move" / "transform".
const char* EditTypeName(EditType type);

/// Cost assigned to infeasible edits: Transform between cells with no
/// string containment relationship, Add of a non-empty cell (§4.2.1).
inline constexpr double kInfiniteCost =
    std::numeric_limits<double>::infinity();

/// One cell edit. Coordinates are 0-based (row, col); src refers to the
/// input/intermediate table, dst to the example output table. Delete has no
/// dst; Add has no src.
struct EditOp {
  EditType type = EditType::kTransform;
  int src_row = -1;
  int src_col = -1;
  int dst_row = -1;
  int dst_col = -1;
  double cost = 1.0;

  /// Debug rendering, e.g. "transform((0,1)->(0,0))".
  std::string ToString() const;

  friend bool operator==(const EditOp& a, const EditOp& b) {
    return a.type == b.type && a.src_row == b.src_row &&
           a.src_col == b.src_col && a.dst_row == b.dst_row &&
           a.dst_col == b.dst_col;
  }
};

/// A (possibly partial) edit path: a sequence of cell edits that formulates
/// the output table from the input table.
using EditPath = std::vector<EditOp>;

/// Sum of op costs along the path.
double PathCost(const EditPath& path);

/// Debug rendering of a whole path, one op per line.
std::string PathToString(const EditPath& path);

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_EDIT_OP_H_
