#ifndef FOOFAH_HEURISTIC_TED_H_
#define FOOFAH_HEURISTIC_TED_H_

#include <string>

#include "heuristic/edit_op.h"
#include "table/table.h"

namespace foofah {

class CancellationToken;

/// Result of the greedy Table Edit Distance approximation.
struct TedResult {
  /// Total cost of the discovered edit path; kInfiniteCost when some output
  /// cell cannot be formulated from the input at all (the goal contains
  /// information the input lacks).
  double cost = 0;
  EditPath path;
};

/// The cost of the cheapest Transform/Move sequence turning input cell
/// content `src` at (src_row, src_col) into output cell content `dst` at
/// (dst_row, dst_col) — the paper's AddCandTransform:
///   contents equal  & coords equal -> 0
///   contents equal  & coords differ -> 1 (Move)
///   contents differ & containment  -> 1 or 2 (Transform [+ Move])
///   contents differ & no containment, or exactly one side empty -> infinity
double TransformSequenceCost(const std::string& src, int src_row, int src_col,
                             const std::string& dst, int dst_row, int dst_col);

/// Greedy approximate Table Edit Distance (§4.2.1, Algorithm 1).
///
/// Walks the output table's cells in row-major order; for each, greedily
/// picks the cheapest way to formulate it: a Transform/Move sequence from a
/// not-yet-used input cell (ties broken by the input cell's row-major
/// order), an Add (only feasible for empty output cells), or — when all of
/// those are infinite — a Transform/Move from an already-used input cell
/// (the paper's lines 13–18 fallback). Finally, every unused input cell is
/// Deleted.
///
/// Reproduces the paper's worked example exactly: for the task of Figure 9
/// the discovered paths for (ei, c1, c2) cost 12, 9 and 18 (our unit tests
/// assert these values).
///
/// `cancel` (optional, not owned) is polled every few output cells so a
/// deadline interrupts the O(cells^2) greedy matching mid-table. When the
/// token fires the function returns promptly with cost = kInfiniteCost and
/// a truncated path; callers must treat that result as garbage — check the
/// token, never cache or act on an estimate computed under cancellation.
TedResult GreedyTed(const Table& input, const Table& output,
                    const CancellationToken* cancel = nullptr);

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_TED_H_
