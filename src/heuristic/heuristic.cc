#include "heuristic/heuristic.h"

#include "heuristic/naive_heuristic.h"
#include "heuristic/ted.h"
#include "heuristic/ted_batch.h"

namespace foofah {

const char* HeuristicKindName(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kTedBatch:
      return "ted_batch";
    case HeuristicKind::kTed:
      return "ted";
    case HeuristicKind::kNaiveRule:
      return "rule";
    case HeuristicKind::kZero:
      return "zero";
  }
  return "unknown";
}

namespace {

class TedBatchHeuristic : public Heuristic {
 public:
  double Estimate(const Table& state, const Table& goal,
                  const CancellationToken* cancel) const override {
    return TedBatchCost(state, goal, cancel);
  }
  std::string name() const override { return "ted_batch"; }
};

class TedHeuristic : public Heuristic {
 public:
  double Estimate(const Table& state, const Table& goal,
                  const CancellationToken* cancel) const override {
    return GreedyTed(state, goal, cancel).cost;
  }
  std::string name() const override { return "ted"; }
};

class RuleHeuristic : public Heuristic {
 public:
  // The rule heuristic is a handful of column scans — too cheap to poll.
  double Estimate(const Table& state, const Table& goal,
                  const CancellationToken*) const override {
    return NaiveRuleHeuristic(state, goal);
  }
  std::string name() const override { return "rule"; }
};

class ZeroHeuristic : public Heuristic {
 public:
  double Estimate(const Table&, const Table&,
                  const CancellationToken*) const override {
    return 0;
  }
  std::string name() const override { return "zero"; }
};

}  // namespace

std::unique_ptr<Heuristic> MakeHeuristic(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kTedBatch:
      return std::make_unique<TedBatchHeuristic>();
    case HeuristicKind::kTed:
      return std::make_unique<TedHeuristic>();
    case HeuristicKind::kNaiveRule:
      return std::make_unique<RuleHeuristic>();
    case HeuristicKind::kZero:
      return std::make_unique<ZeroHeuristic>();
  }
  return nullptr;
}

}  // namespace foofah
