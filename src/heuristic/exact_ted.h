#ifndef FOOFAH_HEURISTIC_EXACT_TED_H_
#define FOOFAH_HEURISTIC_EXACT_TED_H_

#include "table/table.h"
#include "util/status.h"

namespace foofah {

/// Maximum number of goal-table cells ExactTed accepts. The state space is
/// O(|input cells| * 2^|output cells|); beyond this bound the exact
/// computation is intractable (it is equivalent to graph edit distance,
/// which is NP-complete — §4.2.1).
inline constexpr size_t kMaxExactTedOutputCells = 20;

/// Optimal Table Edit Distance (Appendix D, Algorithm 4): the true minimum
/// edit-path cost over Add/Delete/Move/Transform with the same cost model
/// as the greedy approximation. Implemented as dynamic programming over
/// (input-cell index, set of output cells already formulated) instead of
/// the appendix's best-first enumeration — same optimum, polynomially
/// bounded in 2^|output|.
///
/// Used in tests to validate that GreedyTed never under- nor over-shoots
/// absurdly, and that both agree on zero for equal tables. Returns
/// InvalidArgument when the output table exceeds kMaxExactTedOutputCells
/// cells.
Result<double> ExactTed(const Table& input, const Table& output);

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_EXACT_TED_H_
