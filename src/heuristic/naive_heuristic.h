#ifndef FOOFAH_HEURISTIC_NAIVE_HEURISTIC_H_
#define FOOFAH_HEURISTIC_NAIVE_HEURISTIC_H_

#include "table/table.h"

namespace foofah {

/// The rule-based naive heuristic of Appendix C (Algorithm 3): estimates
/// how many Potter's Wheel operators are needed to transform `state` into
/// `goal` using operator-specific rules.
///
/// When the two tables have the same number of rows, the per-row one-to-one
/// rules of Table 10 (Drop/Copy, Move, Extract, Merge, Split) estimate a
/// per-row operator count, and the final score is the median of the per-row
/// sums. Otherwise, the many-to-many shape rules of Table 11 (Fold, Unfold,
/// Delete, Transpose, Wrap) vote on which layout operator is in play (two
/// are assumed when no rule matches, per the appendix), plus one extra
/// operator when any goal cell has no exact content match in the state.
///
/// The paper uses this heuristic only as the "Rule" baseline in the
/// Fig 11c / 12a search-strategy comparison — it is deliberately weaker
/// than TED Batch on layout transformations and is operator-dependent.
double NaiveRuleHeuristic(const Table& state, const Table& goal);

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_NAIVE_HEURISTIC_H_
