#ifndef FOOFAH_HEURISTIC_HEURISTIC_CACHE_H_
#define FOOFAH_HEURISTIC_HEURISTIC_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace foofah {

/// A concurrent memo table for heuristic estimates, keyed by the pair
/// (state content hash, goal content hash). The TED dynamic program is by
/// far the most expensive step of node evaluation, and the search graph
/// reaches the same table through many paths — every such re-visit (and
/// every re-expansion when deduplicate_states is off) would otherwise pay
/// the full DP again. Heuristics are pure functions of (state, goal), so a
/// memo hit is exact, not approximate; the only inaccuracy risk is a
/// 128-bit key collision, which FNV-1a over full cell contents makes
/// negligible for the table sizes Foofah targets. As a belt-and-braces
/// guard, every entry also carries the caller's checksum (the state's
/// shape fingerprint): a resident entry whose checksum disagrees with the
/// lookup's is a detected collision and is reported as a miss (and counted
/// in Stats::collisions) instead of silently serving another state's
/// estimate. Only a same-shape content collision could still slip through;
/// disabling the memo entirely (SearchOptions::cache_heuristic = false,
/// `--no-cache` in the CLI) remains the escape hatch.
///
/// The table is split into shards, each with its own mutex and map, so the
/// parallel expansion threads rarely contend. Capacity is enforced per
/// shard (total capacity / shard count): a full shard evicts an arbitrary
/// resident entry per insert, which keeps the memo bounded without
/// LRU bookkeeping on the hot path.
///
/// All methods are thread-safe. Estimates cached under one goal hash never
/// collide with another goal's, so a single cache instance can be shared
/// across searches with different goals (the incremental §5.2 driver grows
/// the example every round and reuses one cache across rounds).
class HeuristicCache {
 public:
  /// Aggregate counters since construction (or the last Clear()).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;    ///< Lookups that found nothing (collisions incl.).
    uint64_t collisions = 0; ///< Hash hits rejected by checksum mismatch.
    uint64_t evictions = 0; ///< Entries displaced by capacity pressure.
    size_t entries = 0;     ///< Currently resident estimates.
  };

  static constexpr size_t kDefaultCapacity = 1u << 20;
  static constexpr int kDefaultShards = 16;

  /// `capacity` bounds the total resident entries (rounded up to at least
  /// one per shard); `num_shards` is rounded up to a power of two.
  explicit HeuristicCache(size_t capacity = kDefaultCapacity,
                          int num_shards = kDefaultShards);

  HeuristicCache(const HeuristicCache&) = delete;
  HeuristicCache& operator=(const HeuristicCache&) = delete;

  /// The cached estimate for (state_hash, goal_hash), or nullopt. Counts a
  /// hit or a miss. A resident entry whose stored checksum differs from
  /// `checksum` is a detected hash collision: it is reported as a miss
  /// (plus a collision) rather than served.
  std::optional<double> Lookup(uint64_t state_hash, uint64_t goal_hash,
                               uint64_t checksum);

  /// Memoizes `estimate` tagged with `checksum`; overwrites any previous
  /// value for the key (the value is identical anyway for a pure heuristic
  /// unless the key collided, in which case last-writer-wins is as good as
  /// any policy for an unrepresentable pair). Evicts when the shard is at
  /// capacity.
  void Insert(uint64_t state_hash, uint64_t goal_hash, uint64_t checksum,
              double estimate);

  /// Drops every entry and resets the counters.
  void Clear();

  Stats stats() const;
  size_t capacity() const { return shard_capacity_ * shards_.size(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Key {
    uint64_t state_hash;
    uint64_t goal_hash;
    friend bool operator==(const Key& a, const Key& b) {
      return a.state_hash == b.state_hash && a.goal_hash == b.goal_hash;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix64-style finalizer over the combined words; the state hash
      // alone already spreads well, the goal hash decorrelates searches.
      uint64_t x = k.state_hash ^ (k.goal_hash * 0x9E3779B97F4A7C15ull);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  struct Entry {
    double estimate;
    uint64_t checksum;  ///< The state's shape fingerprint at insert time.
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  Shard& ShardFor(const Key& key) {
    // High bits pick the shard so the map's bucket index (low bits) stays
    // uncorrelated with shard membership.
    return shards_[(KeyHash{}(key) >> 32) & shard_mask_];
  }

  std::vector<Shard> shards_;
  size_t shard_mask_;
  size_t shard_capacity_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> collisions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_HEURISTIC_CACHE_H_
