#include "heuristic/edit_op.h"

#include <sstream>

namespace foofah {

const char* EditTypeName(EditType type) {
  switch (type) {
    case EditType::kAdd:
      return "add";
    case EditType::kDelete:
      return "delete";
    case EditType::kMove:
      return "move";
    case EditType::kTransform:
      return "transform";
  }
  return "unknown";
}

std::string EditOp::ToString() const {
  std::ostringstream out;
  out << EditTypeName(type) << "(";
  switch (type) {
    case EditType::kAdd:
      out << "(" << dst_row << "," << dst_col << ")";
      break;
    case EditType::kDelete:
      out << "(" << src_row << "," << src_col << ")";
      break;
    case EditType::kMove:
    case EditType::kTransform:
      out << "(" << src_row << "," << src_col << ")->(" << dst_row << ","
          << dst_col << ")";
      break;
  }
  out << ")";
  return out.str();
}

double PathCost(const EditPath& path) {
  double total = 0;
  for (const EditOp& op : path) total += op.cost;
  return total;
}

std::string PathToString(const EditPath& path) {
  std::string out;
  for (const EditOp& op : path) {
    out += op.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace foofah
