#ifndef FOOFAH_HEURISTIC_HEURISTIC_H_
#define FOOFAH_HEURISTIC_HEURISTIC_H_

#include <memory>
#include <string>

#include "table/table.h"

namespace foofah {

class CancellationToken;

/// Which heuristic function h(n) guides the A* search (§4.2, §5.3).
enum class HeuristicKind {
  /// Table Edit Distance Batch (Algorithm 2) — the paper's contribution.
  kTedBatch = 0,
  /// Raw greedy Table Edit Distance (Algorithm 1), unbatched. Operates at
  /// cell scale, so it over-weights large tables; included for ablation.
  kTed,
  /// The rule-based naive heuristic of Appendix C ("Rule" in Fig 11c/12a).
  kNaiveRule,
  /// h = 0 everywhere: A* degenerates to uniform-cost search.
  kZero,
};

/// "ted_batch" / "ted" / "rule" / "zero".
const char* HeuristicKindName(HeuristicKind kind);

/// Estimates the remaining cost (number of Potter's Wheel operations) from
/// `state` to `goal`. Implementations are stateless and thread-compatible.
class Heuristic {
 public:
  virtual ~Heuristic() = default;

  /// h(state); may return kInfiniteCost when no transformation without new
  /// information can reach `goal`.
  ///
  /// `cancel` (optional, not owned) is polled inside the costlier
  /// implementations' inner loops (TED's greedy matching, TED-Batch's
  /// per-pattern scan) so a deadline interrupts an estimate mid-DP. When
  /// the token fires the returned value is garbage — callers must check
  /// the token and discard (in particular: never cache) such an estimate.
  /// The default argument keeps the interface source-compatible for
  /// callers that never cancel. Overrides inherit the default through the
  /// base declaration; they do not restate it.
  virtual double Estimate(const Table& state, const Table& goal,
                          const CancellationToken* cancel = nullptr) const = 0;

  /// Stable identifier for experiment output.
  virtual std::string name() const = 0;
};

/// Factory for the built-in heuristics.
std::unique_ptr<Heuristic> MakeHeuristic(HeuristicKind kind);

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_HEURISTIC_H_
