#include "heuristic/heuristic_cache.h"

#include <algorithm>

namespace foofah {

namespace {
size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

HeuristicCache::HeuristicCache(size_t capacity, int num_shards) {
  size_t shards = RoundUpToPowerOfTwo(
      static_cast<size_t>(std::max(1, num_shards)));
  shards_ = std::vector<Shard>(shards);
  shard_mask_ = shards - 1;
  shard_capacity_ = std::max<size_t>(1, (std::max<size_t>(1, capacity) +
                                         shards - 1) / shards);
}

std::optional<double> HeuristicCache::Lookup(uint64_t state_hash,
                                             uint64_t goal_hash,
                                             uint64_t checksum) {
  Key key{state_hash, goal_hash};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.checksum != checksum) {
    // Detected 64-bit hash collision: this entry belongs to a
    // different-shaped state. Never serve it.
    collisions_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.estimate;
}

void HeuristicCache::Insert(uint64_t state_hash, uint64_t goal_hash,
                            uint64_t checksum, double estimate) {
  Key key{state_hash, goal_hash};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key, Entry{estimate, checksum});
  if (!inserted) {
    it->second = Entry{estimate, checksum};
    return;
  }
  if (shard.map.size() > shard_capacity_) {
    // Displace an arbitrary resident entry (not the one just added: begin()
    // lands on the newest insert in practice, which would make a full shard
    // thrash on its hottest keys).
    auto victim = shard.map.begin();
    if (victim->first == key) ++victim;
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HeuristicCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  collisions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

HeuristicCache::Stats HeuristicCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.collisions = collisions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.map.size();
  }
  return stats;
}

}  // namespace foofah
