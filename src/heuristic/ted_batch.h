#ifndef FOOFAH_HEURISTIC_TED_BATCH_H_
#define FOOFAH_HEURISTIC_TED_BATCH_H_

#include <vector>

#include "heuristic/edit_op.h"
#include "table/table.h"

namespace foofah {

class CancellationToken;

/// The geometric patterns of Table 4, applied to the (src, dst) coordinate
/// deltas of consecutive ops in a candidate batch. `kAddHorizontal` /
/// `kAddVertical` extend the table's Remove patterns to Add ops (which the
/// paper leaves implicit); they batch dst-only edits the same way Remove
/// batches src-only edits.
enum class GeometricPattern {
  kHorizontalToHorizontal = 0,
  kHorizontalToVertical,
  kVerticalToHorizontal,
  kVerticalToVertical,
  kOneToHorizontal,
  kOneToVertical,
  kRemoveHorizontal,
  kRemoveVertical,
  kAddHorizontal,
  kAddVertical,
};

/// A finalized batch: indexes into the edit path, all of one edit type,
/// following one geometric pattern.
struct EditBatch {
  GeometricPattern pattern = GeometricPattern::kVerticalToVertical;
  std::vector<size_t> op_indices;
};

/// Result of batching an edit path.
struct TedBatchResult {
  /// Sum over batches of the mean op cost within the batch — with unit op
  /// costs, simply the number of batches. This is the TED Batch heuristic
  /// value (§4.2.2).
  double cost = 0;
  std::vector<EditBatch> batches;
};

/// Table Edit Distance Batch (Algorithm 2). Groups the edit path's ops by
/// edit type, generates candidate batches as maximal chains under each
/// geometric pattern, finalizes greedily by descending batch size
/// (singletons complete the cover), and sums each batch's mean cost.
///
/// On the paper's worked example (Figure 9/10) this compacts path costs
/// 12 / 9 / 18 to 4 / 3 / 6, as our tests assert.
///
/// `cancel` (optional, not owned) is polled between the per-pattern chain
/// scans (Table 4 has ten patterns per type group) so a deadline interrupts
/// the batching mid-path. A result computed under a fired token is garbage
/// (cost forced to kInfiniteCost, batches truncated) — callers must check
/// the token before using or caching it.
TedBatchResult BatchEditPath(const EditPath& path,
                             const CancellationToken* cancel = nullptr);

/// Convenience: GreedyTed + BatchEditPath. Returns kInfiniteCost when the
/// greedy TED is infeasible, or when `cancel` fires mid-computation (the
/// caller distinguishes the two by checking the token).
double TedBatchCost(const Table& input, const Table& output,
                    const CancellationToken* cancel = nullptr);

}  // namespace foofah

#endif  // FOOFAH_HEURISTIC_TED_BATCH_H_
