#ifndef FOOFAH_SEARCH_PRUNING_H_
#define FOOFAH_SEARCH_PRUNING_H_

#include <array>
#include <string>
#include <vector>

#include "ops/operation.h"
#include "table/table.h"

namespace foofah {

/// Which of the §4.3 pruning rules are active. All rules are lossless for
/// the tasks Foofah targets (they only remove states from which the goal is
/// unreachable or redundant states), so the search is complete without
/// them; they exist purely for speed and are ablated in Fig 12b.
struct PruningConfig {
  // Global rules (apply to every operator).
  bool missing_alphanumerics = true;
  bool no_effect = true;
  bool novel_symbols = true;
  // Property-specific rules (apply to operators with the matching
  // OperatorProperties flag).
  bool empty_columns = true;
  bool null_in_column = true;

  /// All rules on (the paper's default; "FullPrune" in Fig 12b).
  static PruningConfig Full() { return PruningConfig{}; }
  /// All rules off ("NoPrune").
  static PruningConfig None() {
    return PruningConfig{false, false, false, false, false};
  }
  /// Only the three global rules ("GlobalPrune").
  static PruningConfig GlobalOnly() {
    return PruningConfig{true, true, true, false, false};
  }
  /// Only the two property-specific rules ("PropPrune").
  static PruningConfig PropertyOnly() {
    return PruningConfig{false, false, false, true, true};
  }
};

/// Why a candidate was pruned (for SearchStats accounting), or kKept.
enum class PruneReason {
  kKept = 0,
  kMissingAlphanumerics,
  kNoEffect,
  kNovelSymbols,
  kEmptyColumns,
  kNullInColumn,
};

inline constexpr int kNumPruneReasons = 6;

/// Human-readable rule name ("kept", "missing_alnum", ...).
const char* PruneReasonName(PruneReason reason);

/// Precomputed facts about the goal table, shared across all pruning checks
/// of one search: the distinct alphanumeric characters (as both a bitmap
/// and a compact list for counting) and a printable-symbol bitmap of e_o.
struct GoalCharSets {
  std::array<bool, 128> alnum_bitmap{};
  std::array<bool, 128> symbol_bitmap{};
  std::vector<char> alnum_chars;  ///< Distinct goal letters/digits.

  static GoalCharSets From(const Table& goal);
};

/// Precomputed facts about the parent state, shared across all of its
/// candidate children during one expansion (the inner loop of the search):
/// its printable-symbol bitmap and its count of all-empty columns.
struct ParentContext {
  const Table* parent = nullptr;
  std::array<bool, 128> symbol_bitmap{};
  size_t empty_columns = 0;

  static ParentContext From(const Table& parent);
};

/// Pre-apply check (Null-In-Column): returns the rule that rejects applying
/// `operation` to `parent`, or kKept. This rule inspects the parent state
/// only, so it can skip the (potentially expensive) apply.
PruneReason PruneBeforeApply(const Table& parent, const Operation& operation,
                             const PruningConfig& config);

/// Post-apply check: returns the first §4.3 rule that rejects `child`
/// (produced from the context's parent by `operation`), or kKept.
PruneReason PruneAfterApply(const ParentContext& parent_context,
                            const Table& child, const Operation& operation,
                            const GoalCharSets& goal_chars,
                            const PruningConfig& config);

/// Convenience overload building the parent context on the fly (tests and
/// one-off checks; the search caches the context per expansion).
PruneReason PruneAfterApply(const Table& parent, const Table& child,
                            const Operation& operation,
                            const GoalCharSets& goal_chars,
                            const PruningConfig& config);

}  // namespace foofah

#endif  // FOOFAH_SEARCH_PRUNING_H_
