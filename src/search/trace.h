#ifndef FOOFAH_SEARCH_TRACE_H_
#define FOOFAH_SEARCH_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ops/operation.h"
#include "search/pruning.h"
#include "table/table.h"

namespace foofah {

/// Observation interface for the synthesis search. Attach one through
/// SearchOptions::observer to watch the state-space exploration of
/// Definition 4.1 live — expansions, generated children with their
/// heuristic estimates, pruned candidates with the §4.3 rule that fired,
/// and duplicate hits. All callbacks default to no-ops; when no observer
/// is attached the search pays nothing.
///
/// Node ids are indices into the search's node arena: 0 is the initial
/// state e_i, and ids are assigned in generation order.
class SearchObserver {
 public:
  virtual ~SearchObserver() = default;

  /// A node was taken off the frontier for expansion.
  virtual void OnExpand(int node, const Table& state, uint32_t depth) {
    (void)node;
    (void)state;
    (void)depth;
  }

  /// A child state was kept (survived pruning and deduplication).
  virtual void OnGenerate(int node, int parent, const Operation& operation,
                          double heuristic, bool is_goal) {
    (void)node;
    (void)parent;
    (void)operation;
    (void)heuristic;
    (void)is_goal;
  }

  /// A candidate operation's child state was pruned.
  virtual void OnPrune(int parent, const Operation& operation,
                       PruneReason reason) {
    (void)parent;
    (void)operation;
    (void)reason;
  }

  /// A candidate reproduced an already-seen state.
  virtual void OnDuplicate(int parent, const Operation& operation) {
    (void)parent;
    (void)operation;
  }

  /// A speculatively expanded frontier node (expansion_width > 1) was not
  /// committed: an earlier commit in the batch pushed a child that
  /// outranks it (the node returns to the frontier and will be expanded
  /// again later), or a stop ended the search before its turn. Never fires
  /// at expansion_width 1, so it is deliberately excluded from the
  /// recorder's ToText/ToDot renderings — the rendered trace stays
  /// byte-identical across widths.
  virtual void OnSpeculationDiscarded(int node) { (void)node; }
};

/// Records the explored search graph and renders it as Graphviz DOT — the
/// practical way to *see* why TED Batch expands eight states where blind
/// search generates hundreds of thousands. Caps the number of recorded
/// events so huge searches stay renderable.
class SearchTraceRecorder : public SearchObserver {
 public:
  /// `max_nodes` caps recorded generated nodes; pruned/duplicate edges are
  /// only recorded for parents within the cap.
  explicit SearchTraceRecorder(size_t max_nodes = 256)
      : max_nodes_(max_nodes) {}

  void OnExpand(int node, const Table& state, uint32_t depth) override;
  void OnGenerate(int node, int parent, const Operation& operation,
                  double heuristic, bool is_goal) override;
  void OnPrune(int parent, const Operation& operation,
               PruneReason reason) override;
  void OnDuplicate(int parent, const Operation& operation) override;
  void OnSpeculationDiscarded(int node) override;

  /// Number of nodes recorded (capped).
  size_t recorded_nodes() const { return nodes_.size(); }

  /// Speculative expansions discarded (uncommitted) during the recorded
  /// search; a counter rather than rendered events, so ToText/ToDot output
  /// stays identical across expansion widths.
  size_t speculation_discards() const { return speculation_discards_; }

  /// Graphviz DOT rendering: expanded nodes solid, goal node(s) doubled,
  /// pruned candidates as dashed red leaves labeled with the rule,
  /// duplicates as dotted gray leaves.
  std::string ToDot() const;

  /// One-line-per-event text log (for tests and terminals).
  std::string ToText() const;

 private:
  struct NodeRecord {
    int id = 0;
    int parent = -1;
    std::string label;   // Operation that produced the node.
    double heuristic = 0;
    uint32_t depth = 0;
    bool expanded = false;
    bool goal = false;
  };
  struct EdgeRecord {
    int parent = 0;
    std::string label;
    bool duplicate = false;            // Otherwise pruned.
    PruneReason reason = PruneReason::kKept;
  };

  NodeRecord* FindNode(int id);

  size_t max_nodes_;
  std::vector<NodeRecord> nodes_;
  std::vector<EdgeRecord> rejected_;
  size_t dropped_events_ = 0;
  size_t speculation_discards_ = 0;
};

}  // namespace foofah

#endif  // FOOFAH_SEARCH_TRACE_H_
