#include "search/pruning.h"

#include "ops/registry.h"
#include "util/string_util.h"

namespace foofah {

namespace {

// Number of all-empty columns within the table's rectangle.
size_t CountEmptyColumns(const Table& t) {
  size_t count = 0;
  for (size_t c = 0; c < t.num_cols(); ++c) {
    if (t.ColumnIsEmpty(c)) ++count;
  }
  return count;
}

bool ColumnNonNull(const Table& t, int col) {
  return col >= 0 && static_cast<size_t>(col) < t.num_cols() &&
         t.ColumnHasNoNulls(static_cast<size_t>(col));
}

size_t BitmapIndex(char c) { return static_cast<unsigned char>(c) & 0x7f; }

}  // namespace

const char* PruneReasonName(PruneReason reason) {
  switch (reason) {
    case PruneReason::kKept:
      return "kept";
    case PruneReason::kMissingAlphanumerics:
      return "missing_alnum";
    case PruneReason::kNoEffect:
      return "no_effect";
    case PruneReason::kNovelSymbols:
      return "novel_symbols";
    case PruneReason::kEmptyColumns:
      return "empty_columns";
    case PruneReason::kNullInColumn:
      return "null_in_column";
  }
  return "unknown";
}

GoalCharSets GoalCharSets::From(const Table& goal) {
  GoalCharSets sets;
  for (const Table::Row& row : goal.rows()) {
    for (const std::string& cell : row) {
      for (char c : cell) {
        if (IsAsciiAlnum(c)) {
          if (!sets.alnum_bitmap[BitmapIndex(c)]) {
            sets.alnum_bitmap[BitmapIndex(c)] = true;
            sets.alnum_chars.push_back(c);
          }
        } else if (IsPrintableSymbol(c)) {
          sets.symbol_bitmap[BitmapIndex(c)] = true;
        }
      }
    }
  }
  return sets;
}

ParentContext ParentContext::From(const Table& parent) {
  ParentContext context;
  context.parent = &parent;
  for (const Table::Row& row : parent.rows()) {
    for (const std::string& cell : row) {
      for (char c : cell) {
        if (IsPrintableSymbol(c)) context.symbol_bitmap[BitmapIndex(c)] = true;
      }
    }
  }
  context.empty_columns = CountEmptyColumns(parent);
  return context;
}

PruneReason PruneBeforeApply(const Table& parent, const Operation& operation,
                             const PruningConfig& config) {
  if (!config.null_in_column) return PruneReason::kKept;
  if (!PropertiesOf(operation.op).requires_non_null_column) {
    return PruneReason::kKept;
  }
  switch (operation.op) {
    case OpCode::kUnfold:
      // The header column must not contain nulls: "column headers should
      // not be null values" (§4.3) — the Figure 4 failure mode.
      if (!ColumnNonNull(parent, operation.col1)) {
        return PruneReason::kNullInColumn;
      }
      break;
    case OpCode::kFold: {
      // Key columns with nulls would fold into rows with null identifiers;
      // the header variant additionally needs non-null header names.
      for (int c = 0; c < operation.col1; ++c) {
        if (!ColumnNonNull(parent, c)) return PruneReason::kNullInColumn;
      }
      if (operation.int_param != 0) {
        for (size_t c = static_cast<size_t>(operation.col1);
             c < parent.num_cols(); ++c) {
          if (parent.cell(0, c).empty()) return PruneReason::kNullInColumn;
        }
      }
      break;
    }
    case OpCode::kDivide:
      if (!ColumnNonNull(parent, operation.col1)) {
        return PruneReason::kNullInColumn;
      }
      break;
    default:
      break;
  }
  return PruneReason::kKept;
}

PruneReason PruneAfterApply(const ParentContext& parent_context,
                            const Table& child, const Operation& operation,
                            const GoalCharSets& goal_chars,
                            const PruningConfig& config) {
  // No Effect: the operation did nothing.
  if (config.no_effect && child.ContentEquals(*parent_context.parent)) {
    return PruneReason::kNoEffect;
  }

  // Missing Alphanumerics + Introducing Novel Symbols share one pass over
  // the child's characters (this is the search's hottest path: it runs for
  // every generated candidate).
  const bool check_alnum =
      config.missing_alphanumerics && !goal_chars.alnum_chars.empty();
  const bool check_symbols = config.novel_symbols;
  if (check_alnum || check_symbols) {
    std::array<bool, 128> seen_alnum{};
    size_t remaining = goal_chars.alnum_chars.size();
    for (const Table::Row& row : child.rows()) {
      for (const std::string& cell : row) {
        for (char c : cell) {
          size_t index = BitmapIndex(c);
          if (IsAsciiAlnum(c)) {
            if (check_alnum && goal_chars.alnum_bitmap[index] &&
                !seen_alnum[index]) {
              seen_alnum[index] = true;
              --remaining;
            }
          } else if (check_symbols && IsPrintableSymbol(c) &&
                     !parent_context.symbol_bitmap[index] &&
                     !goal_chars.symbol_bitmap[index]) {
            // The operation introduced a printable symbol the goal does not
            // contain; it would need another operation to remove it later.
            return PruneReason::kNovelSymbols;
          }
        }
      }
    }
    if (check_alnum && remaining > 0) {
      return PruneReason::kMissingAlphanumerics;
    }
  }

  // Generating Empty Columns: Split/Divide/Extract/Fold produced a column
  // with no content (e.g., Split on an absent delimiter).
  if (config.empty_columns &&
      PropertiesOf(operation.op).may_generate_empty_column) {
    if (child.num_rows() > 0 &&
        CountEmptyColumns(child) > parent_context.empty_columns) {
      return PruneReason::kEmptyColumns;
    }
  }

  return PruneReason::kKept;
}

PruneReason PruneAfterApply(const Table& parent, const Table& child,
                            const Operation& operation,
                            const GoalCharSets& goal_chars,
                            const PruningConfig& config) {
  return PruneAfterApply(ParentContext::From(parent), child, operation,
                         goal_chars, config);
}

}  // namespace foofah
