#ifndef FOOFAH_SEARCH_SEARCH_H_
#define FOOFAH_SEARCH_SEARCH_H_

#include <array>
#include <cstdint>
#include <string>

#include "heuristic/heuristic.h"
#include "ops/registry.h"
#include "program/program.h"
#include "search/pruning.h"
#include "table/table.h"
#include "table/table_diff.h"
#include "util/status.h"

namespace foofah {

class SearchObserver;      // search/trace.h
class HeuristicCache;      // heuristic/heuristic_cache.h
class CancellationToken;   // util/cancellation.h
class CandidateGuide;      // search/guide.h

/// How the state space graph of Definition 4.1 is explored (§5.3).
enum class SearchStrategy {
  /// Best-first on f(n) = g(n) + h(n), the paper's A*-inspired search.
  kAStar = 0,
  /// Breadth-first (FIFO) expansion; "BFS" and "BFS NoPrune" in Fig 11c.
  kBfs,
};

/// "astar" / "bfs".
const char* SearchStrategyName(SearchStrategy strategy);

/// Everything configurable about one synthesis run. The defaults are the
/// paper's configuration: A* + TED Batch + all pruning rules + the default
/// operator library.
struct SearchOptions {
  SearchStrategy strategy = SearchStrategy::kAStar;
  HeuristicKind heuristic = HeuristicKind::kTedBatch;
  PruningConfig pruning = PruningConfig::Full();
  /// Operator library; when null, OperatorRegistry::Default() is used.
  const OperatorRegistry* registry = nullptr;

  /// Wall-clock budget in milliseconds; 0 disables the time limit.
  /// (The paper uses 60 s per interaction in §5.2 and 300 s in §5.3.)
  /// Enforced through a CancellationToken polled per expansion, per
  /// candidate, and inside the TED heuristics' inner loops, so the
  /// overshoot past the deadline is bounded by one indivisible evaluation
  /// step (well under the documented 250 ms epsilon) rather than by a
  /// whole expansion round.
  int64_t timeout_ms = 60'000;

  /// Optional shared cancellation token (see util/cancellation.h); not
  /// owned, must outlive the search. Lets a driver impose one protocol-
  /// wide deadline / node / memory budget across rounds, or a UI thread
  /// abort a running synthesis. When timeout_ms > 0 the search tightens
  /// this token's deadline (creating a private token when none is given),
  /// so both limits apply — the stricter wins. A fired token ends the
  /// search cooperatively; the partial frontier is surfaced through
  /// SearchResult::anytime.
  CancellationToken* cancel = nullptr;

  /// Generated-node budget charged through the cancellation token
  /// (CancellationToken::SetNodeBudget); 0 leaves the token's own budget
  /// untouched. Unlike max_expansions (a plain counter check between
  /// expansions), the token budget composes with an externally shared
  /// token and surfaces as CancelReason::kNodeBudget — the degradation
  /// ladder uses it as its deterministic per-rung budget. When set on a
  /// search with a shared token, it overrides that token's node budget.
  uint64_t node_budget = 0;

  /// Approximate memory budget in bytes charged through the token
  /// (CancellationToken::SetMemoryBudget); 0 leaves the token untouched.
  /// Same composition rules as node_budget.
  uint64_t memory_budget = 0;

  /// Maximum number of node expansions; 0 disables the cap.
  uint64_t max_expansions = 200'000;
  /// Maximum number of generated (kept) states; 0 disables the cap.
  /// Guards BFS-NoPrune against memory blowups.
  uint64_t max_generated = 2'000'000;
  /// States wider/taller than this are discarded outright; intermediate
  /// tables bigger than a small multiple of the example sizes can never be
  /// on a minimal path and only burn heuristic time.
  size_t max_state_cells = 4096;

  /// Number of distinct correct programs to collect before stopping. With
  /// the default of 1 the search returns at the first goal, as in the
  /// paper; larger values keep searching and fill SearchResult::
  /// alternatives — useful for the §4.5 validation workflow, where a user
  /// inspects candidate programs and picks the one matching their intent.
  int max_solutions = 1;

  /// Goal-test relaxation: a state with the goal's shape and at most this
  /// many differing cells is accepted as a goal. 0 (the default) is the
  /// paper's exact semantics. Non-zero values implement the §7 future-work
  /// direction of tolerating user mistakes in the example — used through
  /// SynthesizeTolerant, which reports the differing cells back to the
  /// user as suspected example errors.
  size_t goal_tolerance = 0;

  /// Weight w in f(n) = g(n) + w * h(n) for the A* strategy. 1.0 is the
  /// paper's configuration. Values > 1 trust the (inadmissible) heuristic
  /// more — greedier, usually faster, possibly longer programs; values < 1
  /// discount it toward uniform-cost search. Ablated in
  /// bench/ablation_search_design.
  double heuristic_weight = 1.0;

  /// When true (the default, and the paper's implicit assumption — the
  /// state space is a graph, Definition 4.1), previously generated states
  /// are recognized and skipped. Disabling turns the search into a tree
  /// search that re-explores shared substructure; ablated in
  /// bench/ablation_search_design.
  bool deduplicate_states = true;

  /// Optional exploration observer (see search/trace.h); not owned, must
  /// outlive the search. Null disables all callbacks at zero cost.
  /// Callbacks are always invoked serially on the expansion thread, in the
  /// same candidate order as the single-threaded engine, regardless of
  /// num_threads.
  SearchObserver* observer = nullptr;

  /// Threads used to evaluate the candidates of one expansion (apply +
  /// size filter + pruning + heuristic) in parallel. 0 means "use
  /// hardware_concurrency"; 1 runs the exact legacy serial loop. Any
  /// value yields bit-identical programs and pruning statistics: results
  /// land in per-candidate slots and all frontier/accounting effects are
  /// replayed serially in candidate order.
  int num_threads = 0;

  /// Frontier nodes popped and expanded per search iteration. 1 (the
  /// default) is the classic loop: pop the single best node, expand it,
  /// commit. Values > 1 pop the top K frontier nodes at once and evaluate
  /// *all* of their candidates in one parallel batch — speculative
  /// expansion — then commit each node serially in pop order. Before
  /// committing a speculated node, the engine re-checks that it is still
  /// the node a K=1 run would pop next; a node outranked by a child pushed
  /// from an earlier commit is restored to the frontier un-applied and its
  /// evaluation discarded (counted in SearchStats::speculative_discards).
  /// Every frontier push, seen-set insert, goal test, anytime update and
  /// observer callback therefore replays in the exact K=1 order, keeping
  /// results bit-identical across any (num_threads, expansion_width)
  /// combination. Discarded work is not a total loss: heuristic estimates
  /// land in the memo, so a restored node's re-expansion mostly hits the
  /// cache. Values < 1 behave like 1.
  int expansion_width = 1;

  /// Memoize heuristic estimates by (state hash, goal hash). Duplicate
  /// tables reached via different paths — and every re-expansion when
  /// deduplicate_states is false — then skip the TED dynamic program
  /// entirely. Estimates are pure functions of the key, so caching never
  /// changes results; hit/miss counts land in SearchStats.
  bool cache_heuristic = true;

  /// Entry bound for the internally created heuristic cache (ignored when
  /// heuristic_cache is supplied).
  size_t heuristic_cache_capacity = 1u << 20;

  /// Optional externally owned cache shared across searches (the §5.2
  /// driver reuses one across its interaction rounds; goal hashes keep
  /// different goals from colliding). Not owned, must outlive the search.
  /// When null and cache_heuristic is true, the search creates a private
  /// cache for its own duration.
  HeuristicCache* heuristic_cache = nullptr;

  /// Optional learned candidate guide (see search/guide.h and
  /// learn/guidance.h); not owned, must outlive the search. Non-null turns
  /// the run into a STAGED search: a guided phase first explores the
  /// subgraph of candidates the guide keeps (deferred candidates are still
  /// applied and goal-tested in enumeration order, but never estimated or
  /// pushed), capped at guided_max_expansions; if that phase ends without
  /// a program — subgraph exhausted or budget spent — the exact unguided
  /// search reruns from scratch with the same options (the admissible
  /// fallback), sharing one cancellation token and one heuristic memo
  /// across both phases so overall deadlines/budgets still bind and
  /// fallback re-estimates mostly hit the memo. A guided-phase win returns
  /// immediately. SearchStats::guided_* / guidance_* record the split.
  /// Null (the default) is exactly the paper's single-phase search.
  const CandidateGuide* guidance = nullptr;

  /// Expansion cap of the guided phase (plain counter, like
  /// max_expansions); values <= 0 use the built-in default. Only consulted
  /// when `guidance` is set. The cap bounds how much a misguided prior can
  /// cost: the staged search spends at most this many extra expansions
  /// before the exact fallback takes over (token-armed node/memory budgets
  /// and deadlines are shared across phases and never exceeded).
  uint64_t guided_max_expansions = 1'024;

  /// Generated-state cap of the guided phase (plain counter, like
  /// max_generated); values <= 0 use the built-in default. Only consulted
  /// when `guidance` is set. Candidate enumeration — not expansion — is
  /// where search time goes, so this is the knob that bounds the cost of a
  /// fruitless guided phase: a miss costs at most this many generated
  /// states before the exact fallback reruns with the caller's full
  /// max_generated.
  uint64_t guided_max_generated = 4'096;
};

/// Counters describing one search run.
struct SearchStats {
  uint64_t nodes_expanded = 0;
  uint64_t nodes_generated = 0;  ///< States kept on the frontier.
  uint64_t candidates_tried = 0;  ///< Arcs considered before pruning.
  uint64_t duplicates_skipped = 0;
  uint64_t oversize_skipped = 0;
  uint64_t apply_failures = 0;  ///< Candidates with out-of-domain params.
  std::array<uint64_t, kNumPruneReasons> pruned_by_reason{};
  /// Heuristic memoization counters (0/0 when the cache is disabled).
  /// These are the only counters that may differ between thread counts:
  /// the parallel engine evaluates heuristics before deduplication, the
  /// serial engine after, so the hit/miss split can shift while every
  /// estimate value — and therefore the search outcome — stays identical.
  uint64_t heuristic_cache_hits = 0;
  uint64_t heuristic_cache_misses = 0;
  /// Speculative-expansion accounting (0/0 when expansion_width <= 1).
  /// `speculative_expansions` counts frontier nodes popped beyond the
  /// first of each batch — work started on the bet that no earlier commit
  /// outranks them. `speculative_discards` counts batch members whose
  /// evaluation was thrown away: restored to the frontier after an
  /// invalidation, or abandoned when a stop (budget/deadline/cancel/goal)
  /// ended the search mid-batch. Like the cache split, these are
  /// bookkeeping about *how* the search ran, not *what* it found — they
  /// naturally differ across expansion_width values (and under wall-clock
  /// stops) while every result-bearing counter above stays identical.
  uint64_t speculative_expansions = 0;
  uint64_t speculative_discards = 0;
  /// Staged-guidance accounting (all zero/false when SearchOptions::
  /// guidance is null). In a staged search every result-bearing counter
  /// above sums BOTH phases, so expansion/latency comparisons against an
  /// unguided run stay honest; these fields record the split. Like every
  /// other counter they are bit-identical across (num_threads,
  /// expansion_width).
  uint64_t guided_expansions = 0;  ///< Expansions spent in the guided phase.
  uint64_t guidance_deferred = 0;  ///< Candidates the guide deferred.
  uint32_t guidance_fallbacks = 0; ///< 1 when the exact fallback phase ran.
  bool guided_win = false;         ///< Program found by the guided phase.
  double elapsed_ms = 0;
  bool timed_out = false;
  bool budget_exhausted = false;
  /// True when an external RequestCancel() (not a deadline or budget)
  /// ended the search.
  bool cancelled = false;
  /// How far past the armed deadline the search ran before the expiry was
  /// observed, in ms. Only meaningful when timed_out; the robustness suite
  /// asserts this stays under 250 ms corpus-wide even with a slowed-down
  /// heuristic.
  double overshoot_ms = 0;

  uint64_t total_pruned() const {
    uint64_t total = 0;
    for (int i = 1; i < kNumPruneReasons; ++i) total += pruned_by_reason[i];
    return total;
  }

  /// One-line summary for experiment logs.
  std::string ToString() const;
};

/// Best-effort partial answer from a search that ran out of budget: the
/// program of the frontier node the heuristic judged closest to the goal,
/// plus the table it produces and the residual diff still separating that
/// table from the goal. This is what the §4.5 user-effort loop needs to
/// degrade gracefully — the user (or core/approximate and core/diagnose)
/// can accept the partial program and work on the residual instead of
/// getting a bare timeout.
struct AnytimeResult {
  /// True when the search ended prematurely (deadline, budget, external
  /// cancel) with at least one explored state strictly closer to the goal
  /// (lower h) than the input itself. A* only: BFS carries no h.
  bool available = false;
  /// Path from the input to the best frontier state; never empty when
  /// `available` (the input itself never qualifies).
  Program program;
  /// The best frontier state — `program` applied to the input.
  Table table;
  /// Heuristic distance from `table` to the goal; strictly less than
  /// `input_h`.
  double h = 0;
  /// Heuristic distance from the untransformed input to the goal, for
  /// progress reporting ("reduced estimated distance from 14 to 5").
  double input_h = 0;
  /// Cell-level diff of goal vs `table`: what the partial program still
  /// fails to produce. Bounded to the differ's default cap.
  TableDiff residual;
};

/// Outcome of one synthesis search.
struct SearchResult {
  /// True when a program transforming the input example into the output
  /// example was found within budget.
  bool found = false;
  /// The synthesized program (guaranteed correct on the example pair,
  /// §4.5); empty unless `found`.
  Program program;
  /// All distinct correct programs collected (the first is `program`), in
  /// discovery order — best-first order under the active strategy. Has
  /// more than one element only when SearchOptions::max_solutions > 1.
  std::vector<Program> alternatives;
  /// Partial progress when the search ended on a deadline / budget /
  /// cancel without finding an exact program. Unset (`available == false`)
  /// whenever `found` is true or the search exhausted the space cleanly.
  AnytimeResult anytime;
  SearchStats stats;
};

/// Synthesizes a data transformation program turning `input` into `goal` by
/// heuristic search over the state space graph (Definition 4.1): vertices
/// are intermediate tables, arcs are parameterized operations, and the
/// returned program is the arc sequence of the discovered path.
SearchResult SynthesizeProgram(const Table& input, const Table& goal,
                               const SearchOptions& options = {});

}  // namespace foofah

#endif  // FOOFAH_SEARCH_SEARCH_H_
