#ifndef FOOFAH_SEARCH_GUIDE_H_
#define FOOFAH_SEARCH_GUIDE_H_

#include <cstdint>
#include <vector>

#include "ops/operation.h"
#include "table/table.h"

namespace foofah {

/// Candidate-guidance hook for the staged A* search (the ROADMAP's learned
/// search guidance with admissible fallback). A guide marks, for each
/// expansion, the candidates worth a full evaluation; the rest are
/// DEFERRED: still pruned, applied and goal-tested in the exact
/// enumeration order — so within any expanded node, goal discovery is
/// byte-for-byte what the unguided search would do — but never estimated
/// (the expensive TED dynamic program) and never pushed onto the frontier.
/// Deferral shrinks the frontier the guided phase explores; when that
/// phase misses, SynthesizeProgram falls back to the untouched exact
/// search, so completeness and the paper's semantics are preserved (see
/// SearchOptions::guidance).
///
/// The contract is deliberately NOT "reorder the candidates": reordering
/// changes which of two same-expansion goal children is discovered first
/// and therefore which program is returned, breaking the guided-vs-exact
/// byte-identity the differential suite enforces. A stable defer mask
/// cannot.
///
/// Implementations must be deterministic pure functions of their
/// arguments, and thread-compatible for concurrent searches (Partition is
/// always invoked serially on the expansion thread of one search, but many
/// searches — e.g. service workers — may share one guide).
class CandidateGuide {
 public:
  virtual ~CandidateGuide() = default;

  /// Fills `defer` (pre-sized to candidates.size(), all zero) with 1 for
  /// every candidate the guided phase should defer. `state` is the table
  /// being expanded, reached from its parent via `via` (nullptr for the
  /// root), `goal` the target example output.
  virtual void Partition(const Table& state, const Table& goal,
                         const Operation* via,
                         const std::vector<Operation>& candidates,
                         std::vector<uint8_t>* defer) const = 0;
};

}  // namespace foofah

#endif  // FOOFAH_SEARCH_GUIDE_H_
