#include "search/search.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "heuristic/edit_op.h"
#include "heuristic/heuristic_cache.h"
#include "ops/enumerate.h"
#include "ops/operators.h"
#include "search/guide.h"
#include "search/trace.h"
#include "table/table_diff.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace foofah {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kAStar:
      return "astar";
    case SearchStrategy::kBfs:
      return "bfs";
  }
  return "unknown";
}

std::string SearchStats::ToString() const {
  std::ostringstream out;
  out << "expanded=" << nodes_expanded << " generated=" << nodes_generated
      << " tried=" << candidates_tried << " pruned=" << total_pruned()
      << " dup=" << duplicates_skipped << " elapsed_ms=" << elapsed_ms;
  if (heuristic_cache_hits + heuristic_cache_misses > 0) {
    out << " hcache=" << heuristic_cache_hits << "/"
        << (heuristic_cache_hits + heuristic_cache_misses);
  }
  if (speculative_expansions > 0) {
    out << " spec=" << speculative_discards << "/" << speculative_expansions;
  }
  if (guided_expansions > 0 || guidance_fallbacks > 0) {
    out << " guided=" << guided_expansions << "/" << nodes_expanded
        << " deferred=" << guidance_deferred
        << (guided_win ? " GUIDED_WIN" : "")
        << (guidance_fallbacks > 0 ? " FALLBACK" : "");
  }
  if (timed_out) out << " TIMEOUT";
  if (timed_out && overshoot_ms > 0) out << " overshoot_ms=" << overshoot_ms;
  if (budget_exhausted) out << " BUDGET";
  if (cancelled) out << " CANCELLED";
  return out.str();
}

namespace {

/// One vertex of the state space graph, linked to its parent so the program
/// can be reconstructed once the goal is reached.
struct Node {
  Table table;
  int parent = -1;  ///< Index into the node arena; -1 for the root.
  Operation via;    ///< Arc from the parent (meaningless for the root).
  uint32_t depth = 0;  ///< g(n): operations from the initial state.
};

/// Exact-membership state set: hash buckets with full-table comparison, so
/// hash collisions can never merge distinct states.
class StateSet {
 public:
  explicit StateSet(const std::vector<Node>* arena) : arena_(arena) {}

  /// Returns true and records `table` (by node index) when unseen.
  bool Insert(const Table& table, int node_index) {
    uint64_t hash = table.Hash();
    auto [it, inserted] = buckets_.try_emplace(hash);
    if (!inserted) {
      for (int existing : it->second) {
        if ((*arena_)[existing].table.ContentEquals(table)) return false;
      }
    }
    it->second.push_back(node_index);
    return true;
  }

 private:
  const std::vector<Node>* arena_;
  std::unordered_map<uint64_t, std::vector<int>> buckets_;
};

Program ReconstructProgram(const std::vector<Node>& arena, int leaf) {
  std::vector<Operation> operations;
  for (int i = leaf; arena[i].parent >= 0; i = arena[i].parent) {
    operations.push_back(arena[i].via);
  }
  std::reverse(operations.begin(), operations.end());
  return Program(std::move(operations));
}

/// Frontier entry for the A* priority queue. Lower f wins; ties prefer the
/// deeper node (largest g), which reaches goals sooner with unit arc costs;
/// remaining ties resolve by insertion order for determinism.
struct OpenEntry {
  double f;
  uint32_t depth;
  uint64_t seq;
  int node;

  friend bool operator>(const OpenEntry& a, const OpenEntry& b) {
    if (a.f != b.f) return a.f > b.f;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.seq > b.seq;
  }
};

/// How a candidate's side-effect-free evaluation ended. Everything here is
/// computable from (parent state, candidate, goal) alone, which is what
/// lets phase 2 of the expansion run on worker threads.
enum class CandidateFate : uint8_t {
  kPrunedBefore,  ///< Rejected by the pre-apply rule.
  kApplyFailed,   ///< Operation parameters out of domain.
  kOversize,      ///< Child exceeds max_state_cells.
  kPrunedAfter,   ///< Rejected by a post-apply §4.3 rule.
  kDeferred,      ///< Guided phase: survived and goal-tested (not a goal),
                  ///< but the guide deferred it — no estimate, no push.
  kEvaluated,     ///< Child survived; `child` (and maybe `h`) are set.
};

/// Whether an estimate was served from the heuristic memo.
enum class CacheOutcome : uint8_t { kNone = 0, kHit, kMiss };

/// Per-candidate result slot. The parallel engine fans evaluation out into
/// these (one per candidate, index-addressed, no sharing), then replays
/// the slots serially in candidate order so every frontier push, counter
/// increment and observer callback happens exactly as in the serial
/// engine.
struct CandidateOutcome {
  CandidateFate fate = CandidateFate::kApplyFailed;
  PruneReason reason = PruneReason::kKept;  ///< For the pruned fates.
  Table child;                              ///< For kEvaluated.
  bool is_goal = false;
  bool has_h = false;  ///< True when `h` was precomputed in phase 2.
  double h = 0;
  CacheOutcome cache_outcome = CacheOutcome::kNone;
  /// True once evaluation ran to a definitive fate. Stays false for slots
  /// a fired CancellationToken abandoned (never dispatched, or
  /// interrupted mid-estimate); such slots hold garbage and the
  /// cancellation replay skips them.
  bool complete = false;
};

/// One member of a speculative expansion batch (expansion_width > 1): a
/// frontier node popped ahead of its confirmed turn, with everything its
/// commit will need. `entry` keeps the original A* queue entry verbatim —
/// the invalidation check compares it against the live frontier top, and a
/// restore re-pushes it with its original seq so the tie-break order is
/// exactly what a K=1 run would see.
struct SpecNode {
  OpenEntry entry{};
  int node = -1;
  Table state;
  ParentContext context;
  std::vector<Operation> candidates;
  std::vector<uint8_t> defer;  ///< Guide mask (empty when unguided).
  std::vector<CandidateOutcome> outcomes;
};

/// One single-phase search run: the entire pre-guidance SynthesizeProgram
/// algorithm, plus an optional candidate guide whose deferrals shrink the
/// explored subgraph (see search/guide.h). The staged wrapper below
/// composes two of these runs — guided then exact — into the public
/// SynthesizeProgram; `options.guidance` is intentionally ignored here.
SearchResult RunSearch(const Table& input, const Table& goal,
                       const SearchOptions& options,
                       const CandidateGuide* guide) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  auto elapsed_ms = [&start]() {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  SearchResult result;

  // Cooperative stop: the caller's shared token when given, else a private
  // one armed only when a timeout applies. `cancel` stays null when
  // neither exists, keeping the unlimited configuration (timeout_ms == 0,
  // e.g. the thread-count determinism tests) completely clock-free.
  // Tightening (rather than overwriting) the deadline composes a caller's
  // protocol-wide budget with the per-search timeout: the stricter wins.
  CancellationToken owned_token;
  CancellationToken* cancel = options.cancel;
  const bool needs_token = options.timeout_ms > 0 ||
                           options.node_budget > 0 ||
                           options.memory_budget > 0;
  if (cancel == nullptr && needs_token) cancel = &owned_token;
  if (cancel != nullptr && options.timeout_ms > 0) {
    cancel->TightenDeadlineAfterMs(options.timeout_ms);
  }
  // Budget plumbing: nonzero option budgets are armed on the token (and
  // override a shared token's own budgets — callers picking per-search
  // budgets, like the degradation ladder, pass a fresh token per run).
  if (cancel != nullptr && options.node_budget > 0) {
    cancel->SetNodeBudget(options.node_budget);
  }
  if (cancel != nullptr && options.memory_budget > 0) {
    cancel->SetMemoryBudget(options.memory_budget);
  }
  // Maps the token's stop reason onto the stats flags. Call only after
  // IsCancelled() returned true (reason() does not poll the clock).
  auto note_cancel = [&]() {
    if (cancel == nullptr) return;
    switch (cancel->reason()) {
      case CancelReason::kDeadline:
        result.stats.timed_out = true;
        result.stats.overshoot_ms = cancel->OvershootMs();
        break;
      case CancelReason::kExternal:
        result.stats.cancelled = true;
        break;
      case CancelReason::kNodeBudget:
      case CancelReason::kMemoryBudget:
      case CancelReason::kDiskBudget:
        result.stats.budget_exhausted = true;
        break;
      case CancelReason::kNone:
        break;
    }
  };

  OperatorRegistry default_registry = OperatorRegistry::Default();
  const OperatorRegistry& registry =
      options.registry != nullptr ? *options.registry : default_registry;
  std::unique_ptr<Heuristic> heuristic = MakeHeuristic(options.heuristic);
  const GoalCharSets goal_chars = GoalCharSets::From(goal);

  // Heuristic memo: external when the caller shares one across searches,
  // otherwise private to this run. Keyed by goal hash too, so a shared
  // cache never leaks estimates between goals.
  std::unique_ptr<HeuristicCache> owned_cache;
  HeuristicCache* cache = nullptr;
  if (options.cache_heuristic &&
      options.strategy == SearchStrategy::kAStar) {
    cache = options.heuristic_cache;
    if (cache == nullptr) {
      owned_cache =
          std::make_unique<HeuristicCache>(options.heuristic_cache_capacity);
      cache = owned_cache.get();
    }
  }
  const uint64_t goal_hash = goal.Hash();

  // Expansion pool: created once per search. num_threads == 1 (or a
  // 1-core machine under the 0 = auto default) takes the serial path.
  const int num_threads = options.num_threads > 0
                              ? options.num_threads
                              : ThreadPool::DefaultThreadCount();
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  // Error-tolerant mode: a mistaken example cell may contain (or lack)
  // characters no reachable state can supply, so the content-based global
  // rules and the infinite-heuristic cutoffs must be relaxed — otherwise
  // every path to a near-goal would be discarded.
  const bool tolerant = options.goal_tolerance > 0;
  PruningConfig pruning = options.pruning;
  if (tolerant) {
    pruning.missing_alphanumerics = false;
    pruning.novel_symbols = false;
  }
  // Finite stand-in for an infinite estimate in tolerant mode: worse than
  // any realistic program length, but still explorable.
  const double infeasible_estimate =
      static_cast<double>(goal.num_cells()) + 8.0;
  // Thread-safe (the memo is sharded and locked; heuristics are stateless).
  auto estimate = [&](const Table& state, CacheOutcome* outcome) {
    double h;
    FOOFAH_FAULT_HIT(fault_points::kHeuristicEstimate);
    if (cache != nullptr) {
      const uint64_t state_hash = state.Hash();
      // Shape fingerprint rides along as a collision check: a memo entry
      // whose fingerprint disagrees was written by a hash-colliding state
      // — or by a content-equal table with a different stored width,
      // whose estimate legitimately differs — and must not steer this
      // one. Keeping the memo keyed by the exact stored shape is what
      // makes cached estimates pure, and the search thread-count
      // deterministic (the engines populate the memo in different
      // orders).
      const uint64_t checksum = state.ShapeFingerprint();
      if (std::optional<double> memo =
              cache->Lookup(state_hash, goal_hash, checksum)) {
        if (outcome != nullptr) *outcome = CacheOutcome::kHit;
        h = *memo;
      } else {
        h = heuristic->Estimate(state, goal, cancel);
        // A fired token makes the estimate garbage mid-DP: never let it
        // poison the memo — cached estimates must stay pure functions of
        // the key. The insert fault point models a failed/evicted insert,
        // which likewise silently skips (the cache is an accelerator, so
        // results must not change — the fault sweep asserts exactly that).
        if (cancel == nullptr || !cancel->IsCancelled()) {
          if (!FOOFAH_FAULT_FAIL(fault_points::kHeuristicCacheInsert)) {
            cache->Insert(state_hash, goal_hash, checksum, h);
          }
          if (outcome != nullptr) *outcome = CacheOutcome::kMiss;
        }
      }
    } else {
      h = heuristic->Estimate(state, goal, cancel);
    }
    if (h == kInfiniteCost && tolerant) return infeasible_estimate;
    return h;
  };
  auto count_cache_outcome = [&](CacheOutcome outcome) {
    if (outcome == CacheOutcome::kHit) ++result.stats.heuristic_cache_hits;
    if (outcome == CacheOutcome::kMiss) ++result.stats.heuristic_cache_misses;
  };

  std::vector<Node> arena;
  StateSet seen(&arena);

  arena.push_back(Node{input, -1, Operation{}, 0});
  seen.Insert(input, 0);

  if (input.ContentEquals(goal)) {
    result.found = true;  // Empty program.
    result.alternatives.push_back(result.program);
    result.stats.elapsed_ms = elapsed_ms();
    return result;
  }

  auto record_solution = [&](int goal_node) {
    Program program = ReconstructProgram(arena, goal_node);
    for (const Program& existing : result.alternatives) {
      if (existing == program) return;
    }
    result.alternatives.push_back(std::move(program));
  };
  auto enough_solutions = [&]() {
    return static_cast<int>(result.alternatives.size()) >=
           std::max(1, options.max_solutions);
  };
  // Anytime bookkeeping (A* only — BFS carries no h): the frontier node
  // with the strictly lowest heuristic estimate seen so far. Node 0 with
  // best_h == root h means "no state beat the input yet".
  double root_h = 0;
  double best_anytime_h = 0;
  int best_anytime_node = 0;

  auto finalize = [&]() {
    if (!result.alternatives.empty()) {
      result.found = true;
      result.program = result.alternatives.front();
    }
    // A premature stop surrenders the frontier as an anytime result: the
    // path to the explored state judged closest to the goal, plus the
    // residual diff the §4.5 loop can decompose. Requires strict progress
    // (h < root h) so the "partial program" is never the empty one.
    if (!result.found && best_anytime_node != 0 &&
        (result.stats.timed_out || result.stats.budget_exhausted ||
         result.stats.cancelled)) {
      result.anytime.available = true;
      result.anytime.program = ReconstructProgram(arena, best_anytime_node);
      result.anytime.table = arena[best_anytime_node].table;
      result.anytime.h = best_anytime_h;
      result.anytime.input_h = root_h;
      result.anytime.residual =
          DiffTables(goal, result.anytime.table, /*max_cell_diffs=*/64);
    }
    result.stats.elapsed_ms = elapsed_ms();
    return result;
  };

  // Frontier: a priority queue for A*, a FIFO for BFS.
  std::priority_queue<OpenEntry, std::vector<OpenEntry>, std::greater<>>
      astar_open;
  std::deque<int> bfs_open;
  uint64_t seq = 0;

  auto push = [&](int node, double h) {
    if (options.strategy == SearchStrategy::kAStar) {
      // Strict improvement + serial push order make the anytime pick
      // deterministic at any thread count (pushes happen in replay order).
      if (h < best_anytime_h) {
        best_anytime_h = h;
        best_anytime_node = node;
      }
      astar_open.push(OpenEntry{
          arena[node].depth + options.heuristic_weight * h,
          arena[node].depth, seq++, node});
    } else {
      bfs_open.push_back(node);
    }
  };
  auto pop = [&]() -> int {
    if (options.strategy == SearchStrategy::kAStar) {
      int node = astar_open.top().node;
      astar_open.pop();
      return node;
    }
    int node = bfs_open.front();
    bfs_open.pop_front();
    return node;
  };
  auto frontier_empty = [&]() {
    return options.strategy == SearchStrategy::kAStar ? astar_open.empty()
                                                      : bfs_open.empty();
  };

  {
    CacheOutcome outcome = CacheOutcome::kNone;
    double h0 = options.strategy == SearchStrategy::kAStar
                    ? estimate(input, &outcome)
                    : 0;
    if (cancel != nullptr && cancel->IsCancelled()) {
      // The very first estimate outran the deadline. Report the stop
      // reason instead of misreading the garbage h0 as unreachable.
      note_cancel();
      return finalize();
    }
    count_cache_outcome(outcome);
    if (h0 == kInfiniteCost) {
      // The goal needs information the input does not contain; no
      // transformation in this framework can reach it.
      result.stats.elapsed_ms = elapsed_ms();
      return result;
    }
    root_h = h0;
    best_anytime_h = h0;
    push(0, h0);
  }

  // ---- Phase 2: evaluate one candidate without side effects — prune,
  // apply, size-filter, goal-test, and (in the parallel engine) estimate.
  // Reads only search-constant state plus the owning expansion's parent
  // facts; writes only its own slot, so any number of candidates — from
  // one node, or from every node of a speculative batch — evaluate
  // concurrently.
  auto evaluate = [&](const Table& state, const ParentContext& parent_context,
                      const Operation& candidate, bool compute_h,
                      bool deferred, CandidateOutcome& out) {
    // A fired token abandons the slot: `complete` stays false and the
    // cancellation replay skips it.
    if (cancel != nullptr && cancel->IsCancelled()) return;

    PruneReason reason = PruneBeforeApply(state, candidate, pruning);
    if (reason != PruneReason::kKept) {
      out.fate = CandidateFate::kPrunedBefore;
      out.reason = reason;
      out.complete = true;
      return;
    }

    Result<Table> applied = ApplyOperation(state, candidate);
    if (!applied.ok()) {
      out.fate = CandidateFate::kApplyFailed;
      out.complete = true;
      return;
    }
    Table child = std::move(applied).value();

    if (child.num_cells() > options.max_state_cells) {
      out.fate = CandidateFate::kOversize;
      out.complete = true;
      return;
    }

    reason = PruneAfterApply(parent_context, child, candidate, goal_chars,
                             pruning);
    if (reason != PruneReason::kKept) {
      out.fate = CandidateFate::kPrunedAfter;
      out.reason = reason;
      out.complete = true;
      return;
    }

    // Goal test at generation time (§4.1: "If no child of v0 happens to
    // be the goal state ..."): with unit arc costs, the first goal child
    // found along the best-first order is the answer. With a non-zero
    // tolerance, a same-shape state within that many differing cells
    // also counts (the §7 error-tolerant mode).
    bool is_goal = child.ContentEquals(goal);
    if (!is_goal && options.goal_tolerance > 0 &&
        child.num_rows() == goal.num_rows() &&
        child.num_cols() == goal.num_cols()) {
      TableDiff diff = DiffTables(goal, child, options.goal_tolerance + 1);
      is_goal = diff.cell_diffs.size() <= options.goal_tolerance;
    }
    out.is_goal = is_goal;

    // Guided phase: the candidate was pruned, applied and goal-tested
    // exactly as the exact search would — so within-expansion goal
    // discovery order is untouched — but its child is neither estimated
    // (the expensive TED dynamic program) nor kept.
    if (deferred && !is_goal) {
      out.fate = CandidateFate::kDeferred;
      out.complete = true;
      return;
    }

    if (compute_h && !is_goal &&
        options.strategy == SearchStrategy::kAStar) {
      // Parallel engine: estimate before deduplication (the memo makes
      // the duplicate case cheap). The estimate is a pure function of
      // the child, so evaluating it for a child the serial replay later
      // drops as a duplicate cannot change any outcome.
      out.h = estimate(child, &out.cache_outcome);
      // Interrupted mid-DP: out.h is garbage. Leave the slot incomplete.
      if (cancel != nullptr && cancel->IsCancelled()) return;
      out.has_h = true;
    }
    out.child = std::move(child);
    out.fate = CandidateFate::kEvaluated;
    out.complete = true;
  };

  // ---- Phase 3: replay one evaluated slot — every mutation of the
  // search state (arena, seen-set, frontier, stats, observer) happens
  // here, on the expansion thread, in candidate order within pop order.
  // `current` is the node whose expansion produced the slot. Returns
  // false when the search is done (enough solutions / generation budget).
  auto replay = [&](int current, const Operation& candidate,
                    CandidateOutcome& out) -> bool {
    ++result.stats.candidates_tried;
    switch (out.fate) {
      case CandidateFate::kPrunedBefore:
      case CandidateFate::kPrunedAfter:
        ++result.stats.pruned_by_reason[static_cast<int>(out.reason)];
        if (options.observer != nullptr) {
          options.observer->OnPrune(current, candidate, out.reason);
        }
        return true;
      case CandidateFate::kApplyFailed:
        ++result.stats.apply_failures;
        return true;
      case CandidateFate::kOversize:
        ++result.stats.oversize_skipped;
        return true;
      case CandidateFate::kDeferred:
        ++result.stats.guidance_deferred;
        return true;
      case CandidateFate::kEvaluated:
        break;
    }

    int child_index = static_cast<int>(arena.size());
    if (!out.is_goal && options.deduplicate_states &&
        !seen.Insert(out.child, child_index)) {
      ++result.stats.duplicates_skipped;
      if (options.observer != nullptr) {
        options.observer->OnDuplicate(current, candidate);
      }
      return true;
    }

    arena.push_back(Node{std::move(out.child), current, candidate,
                         arena[current].depth + 1});
    ++result.stats.nodes_generated;
    if (cancel != nullptr) {
      // Approximate retained footprint of the kept state. The CoW
      // substrate shares row storage between parent and child, so this
      // intentionally over-counts; the memory budget is a blowup guard,
      // not an accountant.
      cancel->ChargeMemory(64 + 32 * arena.back().table.num_cells());
    }

    if (out.is_goal) {
      if (options.observer != nullptr) {
        options.observer->OnGenerate(child_index, current, candidate, 0,
                                     /*is_goal=*/true);
      }
      record_solution(child_index);
      // Goal states are terminal: do not expand past them.
      return !enough_solutions();
    }

    if (options.max_generated > 0 &&
        result.stats.nodes_generated >= options.max_generated) {
      result.stats.budget_exhausted = true;
      return false;
    }

    double h = 0;
    if (options.strategy == SearchStrategy::kAStar) {
      if (out.has_h) {
        h = out.h;
      } else {
        // Serial engine: estimate after deduplication, exactly as the
        // legacy single-threaded loop did.
        h = estimate(arena[child_index].table, &out.cache_outcome);
        if (cancel != nullptr && cancel->IsCancelled()) {
          // The estimate is garbage. Keep the child off the frontier
          // (it already sits in the arena/seen-set, which is harmless)
          // and let the caller observe the stop.
          return true;
        }
      }
      count_cache_outcome(out.cache_outcome);
    }
    if (options.observer != nullptr) {
      options.observer->OnGenerate(child_index, current, candidate, h,
                                   /*is_goal=*/false);
    }
    if (h == kInfiniteCost) return true;  // Goal unreachable from child.
    push(child_index, h);
    return true;
  };

  // Reused per expansion; slots are index-addressed so phase 2 threads
  // never share one.
  std::vector<CandidateOutcome> outcomes;

  // Speculative K-way expansion state (expansion_width > 1), reused per
  // iteration. `work` flattens the batch into (member, candidate) items so
  // one ParallelFor spans every candidate of every popped node — the whole
  // point of the batch: enough independent items to keep all pool workers
  // busy even when a single node enumerates few candidates.
  const int width = std::max(1, options.expansion_width);
  const bool astar = options.strategy == SearchStrategy::kAStar;
  std::vector<SpecNode> batch;
  std::vector<std::pair<size_t, size_t>> work;

  while (!frontier_empty()) {
    // The token subsumes the old between-rounds elapsed check (it owns the
    // deadline whenever timeout_ms > 0) and additionally fires mid-round:
    // per candidate, per parallel slot, and inside the TED inner loops.
    if (cancel != nullptr && cancel->IsCancelled()) {
      note_cancel();
      break;
    }
    if (options.max_expansions > 0 &&
        result.stats.nodes_expanded >= options.max_expansions) {
      result.stats.budget_exhausted = true;
      break;
    }

    if (width == 1) {
      const int current = pop();
      ++result.stats.nodes_expanded;
      if (cancel != nullptr && cancel->CountNode()) {
        note_cancel();
        break;
      }
      if (options.observer != nullptr) {
        options.observer->OnExpand(current, arena[current].table,
                                   arena[current].depth);
      }

      // ---- Phase 1 (serial): enumerate candidate arcs out of this state.
      // Snapshot: arena may reallocate while children are appended. Under
      // the copy-on-write substrate this is an O(1) handle copy — no cells
      // are cloned, and the pool workers read the shared immutable rows.
      const Table state = arena[current].table;
      std::vector<Operation> candidates =
          EnumerateCandidates(state, goal, registry);
      // Parent facts (symbol bitmap, empty-column count) are shared by
      // every candidate's pruning checks.
      const ParentContext parent_context = ParentContext::From(state);
      // Guided phase: the defer mask is computed serially at expansion
      // time — the guide sees the exact enumeration order — and is
      // read-only afterwards, so both evaluation engines share it safely.
      std::vector<uint8_t> defer;
      if (guide != nullptr) {
        defer.assign(candidates.size(), 0);
        const Operation* via =
            arena[current].parent >= 0 ? &arena[current].via : nullptr;
        guide->Partition(state, goal, via, candidates, &defer);
      }

      if (pool != nullptr && candidates.size() > 1) {
        outcomes.assign(candidates.size(), CandidateOutcome{});
        pool->ParallelFor(
            candidates.size(),
            [&](size_t i) {
              evaluate(state, parent_context, candidates[i],
                       /*compute_h=*/true,
                       /*deferred=*/!defer.empty() && defer[i] != 0,
                       outcomes[i]);
            },
            cancel);
        if (cancel != nullptr && cancel->IsCancelled()) {
          // Salvage the fully evaluated slots — in candidate order, so the
          // replays stay deterministic — to enrich the anytime frontier,
          // then stop. Abandoned/interrupted slots hold garbage; skip them.
          for (size_t i = 0; i < candidates.size(); ++i) {
            if (!outcomes[i].complete) continue;
            if (!replay(current, candidates[i], outcomes[i])) {
              return finalize();
            }
          }
          note_cancel();
          break;
        }
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (!replay(current, candidates[i], outcomes[i])) {
            return finalize();
          }
        }
      } else {
        CandidateOutcome out;
        for (size_t i = 0; i < candidates.size(); ++i) {
          const Operation& candidate = candidates[i];
          // Per-candidate poll: a deadline interrupts mid-round instead of
          // waiting for the next expansion (the loop head notes the
          // reason).
          if (cancel != nullptr && cancel->IsCancelled()) break;
          out = CandidateOutcome{};
          evaluate(state, parent_context, candidate, /*compute_h=*/false,
                   /*deferred=*/!defer.empty() && defer[i] != 0, out);
          if (!out.complete) break;  // Interrupted mid-evaluation.
          if (!replay(current, candidate, out)) return finalize();
        }
      }
      continue;
    }

    // ---- Speculative K-way expansion (the frontier-parallel engine) ----
    //
    // Pop up to `width` frontier nodes and evaluate all of their
    // candidates concurrently, then commit each node serially in pop
    // order. A commit is only applied after re-checking that the node is
    // still what a K=1 run would pop next; everything else about the
    // commit is byte-for-byte the K=1 sequence above, so results are
    // bit-identical across every (num_threads, expansion_width) pair.
    batch.clear();
    while (static_cast<int>(batch.size()) < width && !frontier_empty()) {
      SpecNode spec;
      if (astar) {
        spec.entry = astar_open.top();
        astar_open.pop();
        spec.node = spec.entry.node;
      } else {
        // BFS pops from the front and pushes children at the back, so a
        // K-prefix of the FIFO is exactly the next K expansions of a K=1
        // run: batched BFS commits can never be invalidated.
        spec.node = bfs_open.front();
        bfs_open.pop_front();
      }
      spec.state = arena[spec.node].table;
      spec.candidates = EnumerateCandidates(spec.state, goal, registry);
      if (guide != nullptr) {
        spec.defer.assign(spec.candidates.size(), 0);
        const Operation* via = arena[spec.node].parent >= 0
                                   ? &arena[spec.node].via
                                   : nullptr;
        guide->Partition(spec.state, goal, via, spec.candidates,
                         &spec.defer);
      }
      spec.outcomes.assign(spec.candidates.size(), CandidateOutcome{});
      batch.push_back(std::move(spec));
    }
    // Contexts last: ParentContext points at the member's state table, so
    // it must be built after the batch vector stops moving SpecNodes.
    for (SpecNode& spec : batch) {
      spec.context = ParentContext::From(spec.state);
    }
    // Member 0 is not speculative — a K=1 run pops it too.
    result.stats.speculative_expansions += batch.size() - 1;

    work.clear();
    for (size_t j = 0; j < batch.size(); ++j) {
      for (size_t i = 0; i < batch[j].candidates.size(); ++i) {
        work.emplace_back(j, i);
      }
    }
    auto evaluate_item = [&](size_t w) {
      const auto [j, i] = work[w];
      evaluate(batch[j].state, batch[j].context, batch[j].candidates[i],
               /*compute_h=*/true,
               /*deferred=*/!batch[j].defer.empty() && batch[j].defer[i] != 0,
               batch[j].outcomes[i]);
    };
    if (pool != nullptr && work.size() > 1) {
      pool->ParallelFor(work.size(), evaluate_item, cancel);
    } else {
      for (size_t w = 0; w < work.size(); ++w) {
        if (cancel != nullptr && cancel->IsCancelled()) break;
        evaluate_item(w);
      }
    }

    // Serial commit, pop order. Members that never commit are discarded
    // speculation; member 0 never counts (its evaluation is work a K=1
    // run does too).
    auto discard_from = [&](size_t first) {
      for (size_t k = std::max<size_t>(first, 1); k < batch.size(); ++k) {
        ++result.stats.speculative_discards;
        if (options.observer != nullptr) {
          options.observer->OnSpeculationDiscarded(batch[k].node);
        }
      }
    };
    bool search_done = false;  // Stop reason latched; leave the main loop.
    bool finished = false;     // Replay said done; return finalize().
    for (size_t j = 0; j < batch.size(); ++j) {
      SpecNode& spec = batch[j];
      if (j > 0) {
        // The loop-head checks a K=1 run performs before this pop.
        if (cancel != nullptr && cancel->IsCancelled()) {
          note_cancel();
          discard_from(j);
          search_done = true;
          break;
        }
        if (options.max_expansions > 0 &&
            result.stats.nodes_expanded >= options.max_expansions) {
          result.stats.budget_exhausted = true;
          discard_from(j);
          search_done = true;
          break;
        }
        // Invalidation: an earlier commit pushed a child that outranks
        // this entry, so a K=1 run would pop that child next instead.
        // Restore this member and every later one verbatim — original f /
        // depth / seq, no anytime or counter side effects, exactly the
        // queue a K=1 run would hold — and end the batch. (The members
        // were popped in priority order, so the first outranked one
        // invalidates the whole tail.)
        if (astar && !astar_open.empty() && spec.entry > astar_open.top()) {
          for (size_t k = j; k < batch.size(); ++k) {
            astar_open.push(batch[k].entry);
          }
          discard_from(j);
          break;
        }
      }

      ++result.stats.nodes_expanded;
      if (cancel != nullptr && cancel->CountNode()) {
        note_cancel();
        discard_from(j);  // This member's children are dropped too.
        search_done = true;
        break;
      }
      if (options.observer != nullptr) {
        options.observer->OnExpand(spec.node, arena[spec.node].table,
                                   arena[spec.node].depth);
      }

      if (cancel != nullptr && cancel->IsCancelled()) {
        // Fired during the batch evaluation: salvage this member's fully
        // evaluated slots in candidate order (the K=1 pool path does the
        // same), then stop; later members never commit.
        for (size_t i = 0; i < spec.candidates.size(); ++i) {
          if (!spec.outcomes[i].complete) continue;
          if (!replay(spec.node, spec.candidates[i], spec.outcomes[i])) {
            finished = true;
            break;
          }
        }
        if (!finished) note_cancel();
        discard_from(j + 1);
        search_done = true;
        break;
      }

      for (size_t i = 0; i < spec.candidates.size(); ++i) {
        // No cancel fired, so every slot of this member ran to a
        // definitive fate (ParallelFor covers all indices when its token
        // stays quiet).
        if (!replay(spec.node, spec.candidates[i], spec.outcomes[i])) {
          finished = true;
          break;
        }
      }
      if (finished) {
        discard_from(j + 1);
        search_done = true;
        break;
      }
    }
    if (finished) return finalize();
    if (search_done) break;
  }

  return finalize();
}

}  // namespace

SearchResult SynthesizeProgram(const Table& input, const Table& goal,
                               const SearchOptions& options) {
  // Unguided — and multi-solution: alternatives enumeration wants the
  // full exact graph, so staging (which stops at the first guided hit)
  // would change which alternatives surface. One exact run, exactly the
  // pre-guidance algorithm.
  if (options.guidance == nullptr || options.max_solutions > 1) {
    return RunSearch(input, goal, options, nullptr);
  }

  // ---- Staged guided search ----
  //
  // Phase A runs with the guide's deferrals under a small expansion cap;
  // a hit returns the same program the exact search finds (the guide
  // defers, never reorders, so within-expansion goal discovery is
  // untouched — the guidance differential suite enforces byte identity).
  // A miss falls back to phase B: the untouched exact search, preserving
  // completeness and the paper's semantics.
  //
  // The phases share ONE cancellation token and ONE heuristic memo. The
  // token carries only the wall-clock deadline (tightened once, then the
  // per-phase timeout is zeroed, so the pair can never double-spend a
  // timeout) and any external cancel. Node budgets are deliberately NOT
  // armed during the guided phase: the token is single-shot and its node
  // counter is cumulative, so a phase-A budget trip would latch the token
  // and poison the fallback. Phase A is bounded by plain counters instead
  // (its expansion cap plus the caller's max_generated); phase B re-arms
  // the caller's full node/memory budgets, credited by phase A's token
  // charges so the fallback's grant is not docked by the guided spend.
  // (Memory stays armed in phase A too — it guards the machine — and the
  // credit is sound because phase A's frontier is freed before phase B
  // allocates, so the peak per phase never exceeds the caller's cap.)
  // Under any budget, enabling guidance can only add solves, never
  // regress them. The memo carries phase-A estimates into phase B, which
  // re-explores an overlapping subgraph.
  SearchOptions base = options;
  base.guidance = nullptr;

  CancellationToken staged_token;
  CancellationToken* cancel = base.cancel;
  if (cancel == nullptr && base.timeout_ms > 0) cancel = &staged_token;
  if (cancel != nullptr) {
    if (base.timeout_ms > 0) cancel->TightenDeadlineAfterMs(base.timeout_ms);
    base.cancel = cancel;
    base.timeout_ms = 0;
  }

  std::unique_ptr<HeuristicCache> staged_cache;
  if (base.cache_heuristic && base.strategy == SearchStrategy::kAStar &&
      base.heuristic_cache == nullptr) {
    staged_cache =
        std::make_unique<HeuristicCache>(base.heuristic_cache_capacity);
    base.heuristic_cache = staged_cache.get();
  }

  SearchOptions guided = base;
  // With a shared token the guided phase must not arm a node budget (the
  // trip would latch; see above) — its expansion cap bounds it instead.
  // Without one, each phase gets its own owned token inside the engine,
  // so the caller's node budget safely bounds the guided phase too.
  if (cancel != nullptr) guided.node_budget = 0;
  const uint64_t guided_cap = options.guided_max_expansions > 0
                                  ? options.guided_max_expansions
                                  : 1'024;
  guided.max_expansions = base.max_expansions > 0
                              ? std::min(base.max_expansions, guided_cap)
                              : guided_cap;
  // Generation, not expansion, dominates search cost, so the guided phase
  // also gets a staged generated-state budget: a miss burns at most this
  // many kept states before the fallback reruns with the caller's full cap.
  const uint64_t guided_gen_cap = options.guided_max_generated > 0
                                      ? options.guided_max_generated
                                      : 4'096;
  guided.max_generated = base.max_generated > 0
                             ? std::min(base.max_generated, guided_gen_cap)
                             : guided_gen_cap;

  SearchResult first = RunSearch(input, goal, guided, options.guidance);
  first.stats.guided_expansions = first.stats.nodes_expanded;
  if (first.found) {
    first.stats.guided_win = true;
    return first;
  }
  // A shared-budget stop ends the whole staged search — the fallback
  // would instantly observe the fired token. The guided phase's own
  // expansion cap also reports budget_exhausted, so only the token (not
  // the flag) distinguishes a real caller budget.
  if (first.stats.timed_out || first.stats.cancelled ||
      (cancel != nullptr && cancel->IsCancelled())) {
    return first;
  }

  // Credit phase A's cumulative token charges back so the budgets
  // RunSearch arms on the shared token grant phase B its full allowance.
  if (cancel != nullptr) {
    if (base.node_budget > 0) base.node_budget += cancel->nodes_charged();
    if (base.memory_budget > 0) {
      base.memory_budget += cancel->memory_charged();
    }
  }
  SearchResult second = RunSearch(input, goal, base, nullptr);

  // Merge the guided phase's spend into the fallback's stats so callers
  // see the true total cost of the staged search.
  SearchStats& s = second.stats;
  const SearchStats& g = first.stats;
  s.guided_expansions = g.nodes_expanded;
  s.guidance_deferred += g.guidance_deferred;
  s.guidance_fallbacks = 1;
  s.nodes_expanded += g.nodes_expanded;
  s.nodes_generated += g.nodes_generated;
  s.candidates_tried += g.candidates_tried;
  s.duplicates_skipped += g.duplicates_skipped;
  s.oversize_skipped += g.oversize_skipped;
  s.apply_failures += g.apply_failures;
  for (int i = 0; i < kNumPruneReasons; ++i) {
    s.pruned_by_reason[i] += g.pruned_by_reason[i];
  }
  s.heuristic_cache_hits += g.heuristic_cache_hits;
  s.heuristic_cache_misses += g.heuristic_cache_misses;
  s.speculative_expansions += g.speculative_expansions;
  s.speculative_discards += g.speculative_discards;
  s.elapsed_ms += g.elapsed_ms;
  return second;
}

}  // namespace foofah
