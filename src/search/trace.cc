#include "search/trace.h"

#include <sstream>

namespace foofah {

namespace {

// Escapes a label for DOT double-quoted strings.
std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

SearchTraceRecorder::NodeRecord* SearchTraceRecorder::FindNode(int id) {
  for (NodeRecord& node : nodes_) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

void SearchTraceRecorder::OnExpand(int node, const Table& state,
                                   uint32_t depth) {
  (void)state;
  if (node == 0 && nodes_.empty()) {
    // The root is expanded before any generation callback names it.
    NodeRecord root;
    root.id = 0;
    root.label = "e_i";
    root.depth = 0;
    nodes_.push_back(root);
  }
  if (NodeRecord* record = FindNode(node)) {
    record->expanded = true;
    record->depth = depth;
  }
}

void SearchTraceRecorder::OnGenerate(int node, int parent,
                                     const Operation& operation,
                                     double heuristic, bool is_goal) {
  if (nodes_.empty()) {
    NodeRecord root;
    root.id = 0;
    root.label = "e_i";
    nodes_.push_back(root);
  }
  if (nodes_.size() >= max_nodes_) {
    ++dropped_events_;
    return;
  }
  NodeRecord record;
  record.id = node;
  record.parent = parent;
  record.label = operation.ToString();
  record.heuristic = heuristic;
  record.goal = is_goal;
  nodes_.push_back(record);
}

void SearchTraceRecorder::OnPrune(int parent, const Operation& operation,
                                  PruneReason reason) {
  if (rejected_.size() >= max_nodes_ * 4 || FindNode(parent) == nullptr) {
    ++dropped_events_;
    return;
  }
  rejected_.push_back(EdgeRecord{parent, operation.ToString(), false, reason});
}

void SearchTraceRecorder::OnDuplicate(int parent, const Operation& operation) {
  if (rejected_.size() >= max_nodes_ * 4 || FindNode(parent) == nullptr) {
    ++dropped_events_;
    return;
  }
  rejected_.push_back(
      EdgeRecord{parent, operation.ToString(), true, PruneReason::kKept});
}

void SearchTraceRecorder::OnSpeculationDiscarded(int node) {
  (void)node;
  ++speculation_discards_;
}

std::string SearchTraceRecorder::ToDot() const {
  std::ostringstream out;
  out << "digraph foofah_search {\n";
  out << "  rankdir=TB;\n  node [fontsize=10, shape=box];\n";
  for (const NodeRecord& node : nodes_) {
    out << "  n" << node.id << " [label=\"" << DotEscape(node.label);
    if (node.id != 0) out << "\\nh=" << node.heuristic;
    out << "\"";
    if (node.goal) out << ", peripheries=2, color=darkgreen";
    if (node.expanded) out << ", style=bold";
    out << "];\n";
    if (node.parent >= 0) {
      out << "  n" << node.parent << " -> n" << node.id << ";\n";
    }
  }
  int pseudo = 0;
  for (const EdgeRecord& edge : rejected_) {
    std::string id = "r" + std::to_string(pseudo++);
    if (edge.duplicate) {
      out << "  " << id << " [label=\"" << DotEscape(edge.label)
          << "\\n(duplicate)\", style=dotted, color=gray, fontcolor=gray];\n";
      out << "  n" << edge.parent << " -> " << id
          << " [style=dotted, color=gray];\n";
    } else {
      out << "  " << id << " [label=\"" << DotEscape(edge.label) << "\\n("
          << PruneReasonName(edge.reason)
          << ")\", style=dashed, color=red3, fontcolor=red3];\n";
      out << "  n" << edge.parent << " -> " << id
          << " [style=dashed, color=red3];\n";
    }
  }
  if (dropped_events_ > 0) {
    out << "  overflow [label=\"+" << dropped_events_
        << " events beyond cap\", shape=plaintext];\n";
  }
  out << "}\n";
  return out.str();
}

std::string SearchTraceRecorder::ToText() const {
  std::ostringstream out;
  for (const NodeRecord& node : nodes_) {
    out << "node " << node.id;
    if (node.parent >= 0) out << " <- " << node.parent;
    out << ": " << node.label;
    if (node.id != 0) out << " h=" << node.heuristic;
    if (node.expanded) out << " [expanded]";
    if (node.goal) out << " [goal]";
    out << "\n";
  }
  size_t pruned = 0;
  size_t duplicates = 0;
  for (const EdgeRecord& edge : rejected_) {
    (edge.duplicate ? duplicates : pruned)++;
  }
  out << "rejected: " << pruned << " pruned, " << duplicates
      << " duplicates";
  if (dropped_events_ > 0) out << " (+" << dropped_events_ << " beyond cap)";
  out << "\n";
  return out.str();
}

}  // namespace foofah
