#ifndef FOOFAH_WRANGLER_SESSION_H_
#define FOOFAH_WRANGLER_SESSION_H_

#include <atomic>
#include <vector>

#include "ops/operation.h"
#include "ops/registry.h"
#include "program/program.h"
#include "table/table.h"
#include "util/status.h"

namespace foofah {

class CancellationToken;  // util/cancellation.h

/// A ranked next-step suggestion (see WranglerSession::SuggestNext).
struct Suggestion {
  Operation operation;
  /// TED Batch estimate from the operation's result to the target — lower
  /// is closer to the goal.
  double distance = 0;
};

/// An interactive, Wrangler-style Programming-By-Demonstration session —
/// the §2 interaction model that Foofah's PBE replaces, and the baseline
/// of the §5.6 user study. The user applies one operation at a time,
/// inspects the intermediate table, backtracks with undo/redo (the
/// Example 1 trap: Unfold before Fill, then backtrack), and finally
/// exports the accumulated script as a straight-line Program.
///
/// SuggestNext adds a Proactive-Wrangler-flavored assistant (Guo et al.,
/// UIST'11 — the paper's [16]): it ranks the operator library's candidate
/// next steps by how much closer (under TED Batch) their result is to a
/// target table the user sketches.
///
/// Threading contract: a session is SINGLE-OWNER — exactly one thread may
/// drive it at a time (the interactive UI thread it models). The session
/// is not a concurrent data structure; instead it *detects* overlapping
/// calls from multiple threads and rejects the loser with a typed error
/// rather than corrupting the step history: Apply returns kUnavailable,
/// Undo/Redo return false, and SuggestNext returns no suggestions. A
/// rejected call leaves the session exactly as it was; retry after the
/// owning call returns (see util/retry.h). Accessors (current, raw,
/// step_count, ExportScript) are not guarded — calling them concurrently
/// with a mutating call is still a contract violation.
class WranglerSession {
 public:
  /// Starts a session over `raw`. The registry, when given, must outlive
  /// the session; it bounds the operations Apply accepts and SuggestNext
  /// enumerates (defaults to the full library).
  explicit WranglerSession(Table raw,
                           const OperatorRegistry* registry = nullptr);

  /// Not copyable or movable: `registry_` may point at the session's own
  /// `default_registry_`, which a compiler-generated copy would leave
  /// pointing into the source object.
  WranglerSession(const WranglerSession&) = delete;
  WranglerSession& operator=(const WranglerSession&) = delete;

  /// The table after every applied (and not undone) operation.
  const Table& current() const { return history_[position_].table; }

  /// The original raw table.
  const Table& raw() const { return history_.front().table; }

  /// Number of operations currently in effect.
  size_t step_count() const { return position_; }

  /// Applies an operation to the current table. Discards any redo tail.
  /// Fails (leaving the session unchanged) when the operation's parameters
  /// are out of domain for the current table, or with kUnavailable when
  /// another thread's call is in progress (single-owner contract above).
  Status Apply(const Operation& operation);

  bool CanUndo() const { return position_ > 0; }
  bool CanRedo() const { return position_ + 1 < history_.size(); }

  /// Steps back to the previous table; returns false at the beginning.
  bool Undo();

  /// Re-applies the most recently undone operation; returns false when
  /// there is nothing to redo.
  bool Redo();

  /// The operations currently in effect, as a reusable Program — what
  /// Wrangler exports as a script (§1: "these tools help users generate
  /// reusable data transformation programs").
  Program ExportScript() const;

  /// Ranks candidate next operations by the TED Batch distance from their
  /// result to `target`, ascending; returns at most `k`. Candidates whose
  /// result is unchanged or whose distance is infinite are omitted.
  ///
  /// `cancel` (optional, not owned) bounds an interactive assistant's
  /// latency: when the token fires mid-enumeration the already-scored
  /// candidates are ranked and returned (a prefix of the full suggestion
  /// set — possibly empty), so the UI thread is never stuck behind a
  /// slow TED evaluation.
  std::vector<Suggestion> SuggestNext(
      const Table& target, size_t k,
      const CancellationToken* cancel = nullptr) const;

 private:
  struct Step {
    Table table;
    Operation via;  // Meaningless for the first entry.
  };

  const OperatorRegistry* registry_;
  OperatorRegistry default_registry_;
  std::vector<Step> history_;
  size_t position_ = 0;  // Index into history_ of the current table.
  /// Single-owner misuse detector: held for the duration of every
  /// Apply/Undo/Redo/SuggestNext call; a failed try-acquire is an
  /// overlapping call from another thread. Mutable so the const
  /// SuggestNext can participate.
  mutable std::atomic<bool> busy_{false};
};

}  // namespace foofah

#endif  // FOOFAH_WRANGLER_SESSION_H_
