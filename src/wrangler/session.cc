#include "wrangler/session.h"

#include <algorithm>

#include "heuristic/edit_op.h"
#include "heuristic/ted_batch.h"
#include "ops/enumerate.h"
#include "ops/operators.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"

namespace foofah {

namespace {

/// RAII try-acquire of the session's single-owner flag. `acquired == false`
/// means another thread's call is mid-flight: the loser must bail out
/// without touching session state.
struct OwnerGuard {
  explicit OwnerGuard(std::atomic<bool>& flag)
      : flag_(flag),
        acquired(!flag.exchange(true, std::memory_order_acquire)) {}
  ~OwnerGuard() {
    if (acquired) flag_.store(false, std::memory_order_release);
  }
  OwnerGuard(const OwnerGuard&) = delete;
  OwnerGuard& operator=(const OwnerGuard&) = delete;

  std::atomic<bool>& flag_;
  const bool acquired;
};

Status ConcurrentMisuse() {
  return Status::Unavailable(
      "WranglerSession is single-owner: another call is in progress "
      "(retry after it returns)");
}

}  // namespace

WranglerSession::WranglerSession(Table raw, const OperatorRegistry* registry)
    : registry_(registry), default_registry_(OperatorRegistry::Default()) {
  if (registry_ == nullptr) registry_ = &default_registry_;
  history_.push_back(Step{std::move(raw), Operation{}});
}

Status WranglerSession::Apply(const Operation& operation) {
  OwnerGuard guard(busy_);
  if (!guard.acquired) return ConcurrentMisuse();
  // Held-open point for the overlap regression test: a callback here keeps
  // this call in flight while a second thread's call must be rejected.
  FOOFAH_FAULT_HIT(fault_points::kWranglerApply);
  if (!registry_->IsEnabled(operation.op)) {
    return Status::InvalidArgument(
        std::string("operator not in this session's library: ") +
        OpCodeName(operation.op));
  }
  Result<Table> next = ApplyOperation(current(), operation);
  if (!next.ok()) return next.status();
  history_.resize(position_ + 1);  // Drop the redo tail.
  history_.push_back(Step{std::move(next).value(), operation});
  ++position_;
  return Status::OK();
}

bool WranglerSession::Undo() {
  OwnerGuard guard(busy_);
  if (!guard.acquired) return false;  // Overlapping call; see class doc.
  if (!CanUndo()) return false;
  --position_;
  return true;
}

bool WranglerSession::Redo() {
  OwnerGuard guard(busy_);
  if (!guard.acquired) return false;  // Overlapping call; see class doc.
  if (!CanRedo()) return false;
  ++position_;
  return true;
}

Program WranglerSession::ExportScript() const {
  std::vector<Operation> operations;
  operations.reserve(position_);
  for (size_t i = 1; i <= position_; ++i) {
    operations.push_back(history_[i].via);
  }
  return Program(std::move(operations));
}

std::vector<Suggestion> WranglerSession::SuggestNext(
    const Table& target, size_t k, const CancellationToken* cancel) const {
  std::vector<Suggestion> suggestions;
  OwnerGuard guard(busy_);
  if (!guard.acquired) return suggestions;  // Overlapping call.
  for (const Operation& candidate :
       EnumerateCandidates(current(), target, *registry_)) {
    if (cancel != nullptr && cancel->IsCancelled()) break;
    Result<Table> child = ApplyOperation(current(), candidate);
    if (!child.ok()) continue;
    if (child->ContentEquals(current())) continue;  // No effect.
    double distance = TedBatchCost(*child, target, cancel);
    // A fired token makes the distance garbage: drop it and return the
    // candidates scored so far.
    if (cancel != nullptr && cancel->IsCancelled()) break;
    if (distance == kInfiniteCost) continue;
    suggestions.push_back(Suggestion{candidate, distance});
  }
  std::stable_sort(suggestions.begin(), suggestions.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     return a.distance < b.distance;
                   });
  if (suggestions.size() > k) suggestions.resize(k);
  return suggestions;
}

}  // namespace foofah
