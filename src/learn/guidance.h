#ifndef FOOFAH_LEARN_GUIDANCE_H_
#define FOOFAH_LEARN_GUIDANCE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "learn/stats.h"
#include "ops/operation.h"
#include "search/guide.h"
#include "table/table.h"

namespace foofah {

/// Tuning knobs for GuidancePolicy. The defaults defer aggressively —
/// half the smoothed probability mass, down to two operator families per
/// expansion — because safety does not come from the mass rule: the
/// evidence floor below keeps every family the mined corpus actually used
/// in context, and the staged fallback in SynthesizeProgram keeps every
/// task solvable that the exact search can solve. (The differential sweep
/// behind guidance_diff_test showed byte-identical results from keep_mass
/// 0.30 through 0.95 once solver winners are mined; lower mass simply
/// defers more of the junk.)
struct GuidanceOptions {
  /// Operator families are kept, in descending score order, until their
  /// cumulative normalized score reaches this mass.
  double keep_mass = 0.5;
  /// ... and never fewer than this many families are kept.
  int min_keep_ops = 2;
  /// Laplace smoothing added to every count, so an operator unseen in the
  /// mined corpus scores low but never zero.
  double smoothing = 0.5;
  /// Never defer a family with nonzero mined evidence for its context
  /// (ngram[prev][op] > 0 or profile[bucket][op] > 0): the cumulative-mass
  /// rule ranks by a smoothed blend, and on sparse corpora it can rank a
  /// genuinely-observed family below never-observed ones. Deferral is then
  /// carried by families the corpus never used in that context, which is
  /// what keeps the guided phase's wins byte-identical to the exact search
  /// in practice. Off for adversarial/ablation studies.
  bool keep_mined_evidence = true;
};

/// The learned candidate guide: scores each operator family as the
/// geometric mean of two smoothed conditionals from the mined model —
/// P(op | previous op) from the bigram table and P(op | table profile)
/// from the bucket conditionals — then defers every candidate whose
/// family falls outside the top-scoring set covering `keep_mass` of the
/// normalized score. Scoring is per-FAMILY (OpCode), not per-parameter:
/// the mined statistics carry no parameter information, and deferring a
/// whole family is what actually shrinks the frontier (parameter
/// enumeration within a kept family is left to the exact machinery).
///
/// Deterministic pure function of (model, options, arguments); ties in
/// the score ranking break toward the smaller OpCode. Thread-compatible:
/// Partition is const and touches no mutable state, so one policy can
/// serve every worker of a SynthesisService.
class GuidancePolicy : public CandidateGuide {
 public:
  explicit GuidancePolicy(GuidanceModel model, GuidanceOptions options = {});

  void Partition(const Table& state, const Table& goal, const Operation* via,
                 const std::vector<Operation>& candidates,
                 std::vector<uint8_t>* defer) const override;

  /// The per-family keep/defer decision for a (previous op, bucket) pair,
  /// exposed for tests and the `foofah_learn inspect` report:
  /// kept[code] == true means candidates of that family survive.
  std::array<bool, kNumOpCodes> KeptFamilies(int prev_code,
                                             uint32_t bucket) const;

  const GuidanceModel& model() const { return model_; }
  const GuidanceOptions& options() const { return options_; }

 private:
  GuidanceModel model_;
  GuidanceOptions options_;
  /// Row sums of model_.ngram, precomputed (denominators of P(op|prev)).
  std::array<uint64_t, kNumOpCodes + 1> ngram_row_total_{};
};

}  // namespace foofah

#endif  // FOOFAH_LEARN_GUIDANCE_H_
