#include "learn/snapshot.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace foofah {

namespace {

constexpr char kMagic[] = "foofah-guidance-snapshot";
/// Serialized name of GuidanceModel::kStartToken in ngram lines.
constexpr char kStartName[] = "^";

void AppendHex64(std::string* out, uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  *out += buf;
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  // %.17g round-trips every finite double and is locale-independent for
  // the values estimates take (finite, non-negative).
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendScriptHex(std::string* out, const std::string& script) {
  static const char kHex[] = "0123456789abcdef";
  for (unsigned char byte : script) {
    out->push_back(kHex[byte >> 4]);
    out->push_back(kHex[byte & 0xF]);
  }
}

bool ParseHex64(std::string_view token, uint64_t* value) {
  if (token.empty() || token.size() > 16) return false;
  uint64_t v = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *value = v;
  return true;
}

bool ParseScriptHex(std::string_view token, std::string* script) {
  if (token.size() % 2 != 0) return false;
  script->clear();
  script->reserve(token.size() / 2);
  for (size_t i = 0; i < token.size(); i += 2) {
    uint64_t hi, lo;
    if (!ParseHex64(token.substr(i, 1), &hi) ||
        !ParseHex64(token.substr(i + 1, 1), &lo)) {
      return false;
    }
    script->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// Splits a line on single spaces. Snapshot tokens never contain spaces
/// (operator names are single words, scripts are hex-encoded).
std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string_view::npos) end = line.size();
    if (end > start) tokens.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

bool OpFromToken(std::string_view token, int* code) {
  if (token == kStartName) {
    *code = GuidanceModel::kStartToken;
    return true;
  }
  OpCode op;
  if (!OpCodeFromName(token, &op)) return false;
  *code = static_cast<int>(op);
  return true;
}

Status MalformedLine(size_t line_number, std::string_view line) {
  std::ostringstream msg;
  msg << "guidance snapshot: malformed line " << line_number << ": '" << line
      << "'";
  return Status::ParseError(msg.str());
}

}  // namespace

std::string SerializeGuidanceSnapshot(const GuidanceSnapshot& snapshot) {
  const GuidanceModel& m = snapshot.model;
  std::string payload;

  payload += "meta programs " + std::to_string(m.programs_mined) + "\n";
  payload += "meta operations " + std::to_string(m.operations_mined) + "\n";

  // Fixed iteration orders (enum order, then ordered-map order) plus
  // nonzero-only emission make the payload a pure function of the value.
  for (int c = 0; c < kNumOpCodes; ++c) {
    if (m.unigram[c] == 0) continue;
    payload += "unigram ";
    payload += OpCodeName(static_cast<OpCode>(c));
    payload += " " + std::to_string(m.unigram[c]) + "\n";
  }
  for (int p = 0; p <= kNumOpCodes; ++p) {
    const char* prev_name = p == GuidanceModel::kStartToken
                                ? kStartName
                                : OpCodeName(static_cast<OpCode>(p));
    for (int c = 0; c < kNumOpCodes; ++c) {
      if (m.ngram[p][c] == 0) continue;
      payload += "ngram ";
      payload += prev_name;
      payload += " ";
      payload += OpCodeName(static_cast<OpCode>(c));
      payload += " " + std::to_string(m.ngram[p][c]) + "\n";
    }
  }
  for (const auto& [bucket, counts] : m.profile) {
    for (int c = 0; c < kNumOpCodes; ++c) {
      if (counts[c] == 0) continue;
      payload += "profile " + std::to_string(bucket) + " ";
      payload += OpCodeName(static_cast<OpCode>(c));
      payload += " " + std::to_string(counts[c]) + "\n";
    }
  }
  for (const GuidanceSnapshot::HeuristicEntry& e : snapshot.heuristic_entries) {
    payload += "hcache ";
    AppendHex64(&payload, e.state_hash);
    payload += " ";
    AppendHex64(&payload, e.goal_hash);
    payload += " ";
    AppendHex64(&payload, e.checksum);
    payload += " ";
    AppendDouble(&payload, e.estimate);
    payload += "\n";
  }
  for (const GuidanceSnapshot::ProgramEntry& e : snapshot.program_entries) {
    payload += "program ";
    AppendHex64(&payload, e.input_hash);
    payload += " ";
    AppendHex64(&payload, e.input_shape);
    payload += " ";
    AppendHex64(&payload, e.output_hash);
    payload += " ";
    AppendHex64(&payload, e.output_shape);
    payload += " ";
    AppendScriptHex(&payload, e.script);
    payload += "\n";
  }

  std::string out = std::string(kMagic) + " v" +
                    std::to_string(kGuidanceSnapshotVersion) + "\n";
  out += "checksum ";
  AppendHex64(&out, Fnv1aHash(payload));
  out += "\n";
  out += payload;
  return out;
}

Result<GuidanceSnapshot> ParseGuidanceSnapshot(std::string_view text) {
  // Line 1: magic + version.
  size_t eol = text.find('\n');
  if (eol == std::string_view::npos) {
    return Status::ParseError("guidance snapshot: missing header line");
  }
  std::string_view header = text.substr(0, eol);
  std::string_view magic_prefix(kMagic);
  if (header.substr(0, magic_prefix.size()) != magic_prefix) {
    return Status::ParseError("guidance snapshot: bad magic");
  }
  std::string expected_version =
      " v" + std::to_string(kGuidanceSnapshotVersion);
  if (header.substr(magic_prefix.size()) != expected_version) {
    std::ostringstream msg;
    msg << "guidance snapshot: version mismatch: got '"
        << header.substr(magic_prefix.size()) << "', this build reads v"
        << kGuidanceSnapshotVersion;
    return Status::InvalidArgument(msg.str());
  }

  // Line 2: payload checksum.
  std::string_view rest = text.substr(eol + 1);
  eol = rest.find('\n');
  if (eol == std::string_view::npos) {
    return Status::ParseError("guidance snapshot: missing checksum line");
  }
  std::vector<std::string_view> checksum_tokens =
      SplitTokens(rest.substr(0, eol));
  uint64_t stored_checksum = 0;
  if (checksum_tokens.size() != 2 || checksum_tokens[0] != "checksum" ||
      !ParseHex64(checksum_tokens[1], &stored_checksum)) {
    return Status::ParseError("guidance snapshot: malformed checksum line");
  }
  std::string_view payload = rest.substr(eol + 1);
  const uint64_t actual_checksum = Fnv1aHash(payload);
  if (actual_checksum != stored_checksum) {
    std::ostringstream msg;
    msg << "guidance snapshot: checksum mismatch (stored " << std::hex
        << stored_checksum << ", payload hashes to " << actual_checksum
        << ") — the file was truncated or tampered with";
    return Status::ParseError(msg.str());
  }

  GuidanceSnapshot snapshot;
  GuidanceModel& m = snapshot.model;
  size_t line_number = 2;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    std::string_view line = payload.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens.empty()) return MalformedLine(line_number, line);

    if (tokens[0] == "meta" && tokens.size() == 3) {
      uint64_t value = 0;
      for (char c : tokens[2]) {
        if (c < '0' || c > '9') return MalformedLine(line_number, line);
        value = value * 10 + static_cast<uint64_t>(c - '0');
      }
      if (tokens[1] == "programs") {
        m.programs_mined = value;
      } else if (tokens[1] == "operations") {
        m.operations_mined = value;
      } else {
        return MalformedLine(line_number, line);
      }
    } else if (tokens[0] == "unigram" && tokens.size() == 3) {
      int code;
      uint64_t count = 0;
      if (!OpFromToken(tokens[1], &code) ||
          code == GuidanceModel::kStartToken) {
        return MalformedLine(line_number, line);
      }
      for (char c : tokens[2]) {
        if (c < '0' || c > '9') return MalformedLine(line_number, line);
        count = count * 10 + static_cast<uint64_t>(c - '0');
      }
      m.unigram[code] = count;
    } else if (tokens[0] == "ngram" && tokens.size() == 4) {
      int prev, code;
      uint64_t count = 0;
      if (!OpFromToken(tokens[1], &prev) || !OpFromToken(tokens[2], &code) ||
          code == GuidanceModel::kStartToken) {
        return MalformedLine(line_number, line);
      }
      for (char c : tokens[3]) {
        if (c < '0' || c > '9') return MalformedLine(line_number, line);
        count = count * 10 + static_cast<uint64_t>(c - '0');
      }
      m.ngram[prev][code] = count;
    } else if (tokens[0] == "profile" && tokens.size() == 4) {
      uint32_t bucket = 0;
      int code;
      uint64_t count = 0;
      for (char c : tokens[1]) {
        if (c < '0' || c > '9') return MalformedLine(line_number, line);
        bucket = bucket * 10 + static_cast<uint32_t>(c - '0');
      }
      if (bucket >= kNumProfileBuckets || !OpFromToken(tokens[2], &code) ||
          code == GuidanceModel::kStartToken) {
        return MalformedLine(line_number, line);
      }
      for (char c : tokens[3]) {
        if (c < '0' || c > '9') return MalformedLine(line_number, line);
        count = count * 10 + static_cast<uint64_t>(c - '0');
      }
      m.profile[bucket][code] = count;
    } else if (tokens[0] == "hcache" && tokens.size() == 5) {
      GuidanceSnapshot::HeuristicEntry e;
      char* parse_end = nullptr;
      std::string estimate_str(tokens[4]);
      e.estimate = std::strtod(estimate_str.c_str(), &parse_end);
      if (!ParseHex64(tokens[1], &e.state_hash) ||
          !ParseHex64(tokens[2], &e.goal_hash) ||
          !ParseHex64(tokens[3], &e.checksum) || parse_end == nullptr ||
          *parse_end != '\0') {
        return MalformedLine(line_number, line);
      }
      snapshot.heuristic_entries.push_back(e);
    } else if (tokens[0] == "program" && tokens.size() == 6) {
      GuidanceSnapshot::ProgramEntry e;
      if (!ParseHex64(tokens[1], &e.input_hash) ||
          !ParseHex64(tokens[2], &e.input_shape) ||
          !ParseHex64(tokens[3], &e.output_hash) ||
          !ParseHex64(tokens[4], &e.output_shape) ||
          !ParseScriptHex(tokens[5], &e.script)) {
        return MalformedLine(line_number, line);
      }
      snapshot.program_entries.push_back(std::move(e));
    } else {
      return MalformedLine(line_number, line);
    }
  }
  return snapshot;
}

Status SaveGuidanceSnapshot(const GuidanceSnapshot& snapshot,
                            const std::string& path) {
  const std::string bytes = SerializeGuidanceSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("guidance snapshot: cannot open '" + tmp +
                              "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return Status::Internal("guidance snapshot: short write to '" + tmp +
                              "'");
    }
  }
  // Rename-into-place so a concurrent loader sees the old file or the new
  // one, never a torn prefix (the checksum would catch a tear anyway, but
  // a clean swap keeps warm replicas from transiently degrading).
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("guidance snapshot: rename('" + tmp + "' -> '" +
                            path + "') failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Result<GuidanceSnapshot> LoadGuidanceSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("guidance snapshot: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseGuidanceSnapshot(buffer.str());
}

}  // namespace foofah
