#ifndef FOOFAH_LEARN_STATS_H_
#define FOOFAH_LEARN_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "ops/operation.h"
#include "program/program.h"
#include "scenarios/scenario.h"
#include "table/table.h"

namespace foofah {

struct SearchOptions;  // search/search.h — only MineSolved needs it.

/// Number of distinct ProfileBucket values (see below):
/// 3 column-delta signs x 3 row-delta signs x has-empty x single-row-goal.
inline constexpr uint32_t kNumProfileBuckets = 36;

/// Coarse joint feature of (state, goal) used to condition operator
/// priors: which direction the shape still has to move, whether the state
/// carries empty cells (Fill/Delete territory), and whether the goal is a
/// single row (Wrap/Transpose territory). Deliberately low-cardinality —
/// the mined corpora are small (tens to hundreds of programs), so fine
/// features would mostly memorize scenario identities instead of
/// generalizing, and the bucket must be computable in nanoseconds on the
/// search's hot expansion path.
uint32_t ProfileBucket(const Table& state, const Table& goal);

/// Operator-usage statistics mined from ground-truth programs: bigram
/// transition counts (previous operator -> next operator, with a start
/// token for the first step), marginal unigram counts, and per-bucket
/// conditionals (table profile -> operator). Everything is raw counts —
/// smoothing and normalization live in GuidancePolicy — so models merge
/// by addition and serialize losslessly as integers.
struct GuidanceModel {
  /// Row index into `ngram` meaning "no previous operator" (program start).
  static constexpr int kStartToken = kNumOpCodes;

  /// ngram[prev][next]: count of `next` following `prev` in mined truth
  /// programs; row kStartToken counts first operations.
  std::array<std::array<uint64_t, kNumOpCodes>, kNumOpCodes + 1> ngram{};

  /// unigram[op]: total occurrences of `op` across mined programs.
  std::array<uint64_t, kNumOpCodes> unigram{};

  /// profile[bucket][op]: occurrences of `op` applied to an intermediate
  /// state whose ProfileBucket (against the mined task's goal) was
  /// `bucket`. An ordered map so serialization is deterministic.
  std::map<uint32_t, std::array<uint64_t, kNumOpCodes>> profile;

  uint64_t programs_mined = 0;
  uint64_t operations_mined = 0;

  /// Counts are additive: pointwise sum of every table.
  void MergeFrom(const GuidanceModel& other);

  friend bool operator==(const GuidanceModel& a, const GuidanceModel& b) {
    return a.ngram == b.ngram && a.unigram == b.unigram &&
           a.profile == b.profile && a.programs_mined == b.programs_mined &&
           a.operations_mined == b.operations_mined;
  }
};

/// Walks one truth program forward from `input` toward `goal`, crediting
/// each operation to the bigram, unigram and profile tables (the profile
/// bucket is computed against the state the operation was applied TO,
/// which is exactly what the search sees at expansion time). Stops early
/// if a step fails to execute — a truth program that cannot replay
/// contributes only its valid prefix.
void MineProgram(const Table& input, const Table& goal, const Program& truth,
                 GuidanceModel* model);

/// Mines every scenario that carries a ground-truth program (oracle-only
/// scenarios are skipped: there is no operator sequence to learn from).
/// Mining walks the FULL example pair, the same tables the solve
/// campaigns present to the search.
GuidanceModel MineScenarios(const std::vector<Scenario>& scenarios);

/// Runs the exact (unguided) search on the example and, when it solves,
/// mines the program the SEARCH found — which on ties is not always the
/// hand-written truth program. Truth programs teach the policy what
/// transformations look like; solver winners teach it which of several
/// equal-cost solutions the search actually returns, and that second
/// signal is what lets GuidancePolicy's evidence floor keep every arc a
/// real winner travels (the guided phase then provably returns the exact
/// search's own program whenever it wins on a mined task — see
/// guidance_diff_test). `options.guidance` is ignored; the mining run is
/// always exact. Returns true when a program was mined.
bool MineSolved(const Table& input, const Table& goal,
                const SearchOptions& options, GuidanceModel* model);

}  // namespace foofah

#endif  // FOOFAH_LEARN_STATS_H_
