#include "learn/guidance.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace foofah {

GuidancePolicy::GuidancePolicy(GuidanceModel model, GuidanceOptions options)
    : model_(std::move(model)), options_(options) {
  for (int p = 0; p <= kNumOpCodes; ++p) {
    uint64_t total = 0;
    for (int c = 0; c < kNumOpCodes; ++c) total += model_.ngram[p][c];
    ngram_row_total_[p] = total;
  }
}

std::array<bool, kNumOpCodes> GuidancePolicy::KeptFamilies(
    int prev_code, uint32_t bucket) const {
  const double s = options_.smoothing > 0 ? options_.smoothing : 0.5;
  const int prev =
      (prev_code >= 0 && prev_code <= kNumOpCodes) ? prev_code
                                                   : GuidanceModel::kStartToken;

  const std::array<uint64_t, kNumOpCodes>* bucket_counts = nullptr;
  uint64_t bucket_total = 0;
  auto it = model_.profile.find(bucket);
  if (it != model_.profile.end()) {
    bucket_counts = &it->second;
    for (int c = 0; c < kNumOpCodes; ++c) bucket_total += it->second[c];
  }

  const double ngram_denom =
      static_cast<double>(ngram_row_total_[prev]) + s * kNumOpCodes;
  const double bucket_denom =
      static_cast<double>(bucket_total) + s * kNumOpCodes;

  std::array<double, kNumOpCodes> score{};
  double score_total = 0;
  for (int c = 0; c < kNumOpCodes; ++c) {
    const double p_ngram =
        (static_cast<double>(model_.ngram[prev][c]) + s) / ngram_denom;
    const double p_bucket =
        ((bucket_counts != nullptr ? static_cast<double>((*bucket_counts)[c])
                                   : 0.0) +
         s) /
        bucket_denom;
    score[c] = std::sqrt(p_ngram * p_bucket);
    score_total += score[c];
  }

  // Rank descending; ties break toward the smaller OpCode so the ranking
  // (and therefore the defer mask) is a deterministic pure function.
  std::array<int, kNumOpCodes> order{};
  for (int c = 0; c < kNumOpCodes; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });

  std::array<bool, kNumOpCodes> kept{};
  const int min_keep = std::max(1, options_.min_keep_ops);
  double mass = 0;
  for (int rank = 0; rank < kNumOpCodes; ++rank) {
    const int c = order[rank];
    if (rank < min_keep || mass < options_.keep_mass * score_total) {
      kept[c] = true;
      mass += score[c];
    } else {
      break;  // Ranks only get worse from here.
    }
  }

  // The evidence floor: a family the mined corpus HAS used in this
  // context — after this previous operator AND on a state with this
  // profile — is never deferred, however low its normalized score. The
  // mass rule above carries the deferral strength; this floor protects
  // exactly the arcs real winner programs travel (the differential
  // suite's byte-identity divergences all traced back to deferring a
  // family with mined evidence for its context). Both counts are
  // required: mining one step credits its bigram and its bucket
  // together, so every winner arc passes, while families evidenced only
  // after other predecessors (or only in other buckets) stay deferrable.
  if (options_.keep_mined_evidence) {
    for (int c = 0; c < kNumOpCodes; ++c) {
      if (kept[c]) continue;
      if (model_.ngram[prev][c] > 0 && bucket_counts != nullptr &&
          (*bucket_counts)[c] > 0) {
        kept[c] = true;
      }
    }
  }
  return kept;
}

void GuidancePolicy::Partition(const Table& state, const Table& goal,
                               const Operation* via,
                               const std::vector<Operation>& candidates,
                               std::vector<uint8_t>* defer) const {
  const int prev = via != nullptr ? static_cast<int>(via->op)
                                  : GuidanceModel::kStartToken;
  const std::array<bool, kNumOpCodes> kept =
      KeptFamilies(prev, ProfileBucket(state, goal));
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!kept[static_cast<int>(candidates[i].op)]) (*defer)[i] = 1;
  }
}

}  // namespace foofah
