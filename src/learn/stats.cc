#include "learn/stats.h"

#include <utility>

#include "ops/operators.h"
#include "search/search.h"
#include "util/status.h"

namespace foofah {

namespace {

/// 0 / 1 / 2 for negative / zero / positive.
uint32_t Sign3(long long delta) {
  if (delta < 0) return 0;
  if (delta == 0) return 1;
  return 2;
}

bool HasEmptyCell(const Table& table) {
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Table::Row& row = table.row(r);
    // Ragged rows: the short tail reads as empty cells, which is exactly
    // the condition Fill/Delete/Fold react to, so count it.
    if (row.size() < table.num_cols()) return true;
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (row[c].empty()) return true;
    }
  }
  return false;
}

}  // namespace

uint32_t ProfileBucket(const Table& state, const Table& goal) {
  const uint32_t cols_sign =
      Sign3(static_cast<long long>(state.num_cols()) -
            static_cast<long long>(goal.num_cols()));
  const uint32_t rows_sign =
      Sign3(static_cast<long long>(state.num_rows()) -
            static_cast<long long>(goal.num_rows()));
  const uint32_t has_empty = HasEmptyCell(state) ? 1 : 0;
  const uint32_t single_row_goal = goal.num_rows() == 1 ? 1 : 0;
  return ((cols_sign * 3 + rows_sign) * 2 + has_empty) * 2 + single_row_goal;
}

void GuidanceModel::MergeFrom(const GuidanceModel& other) {
  for (int p = 0; p <= kNumOpCodes; ++p) {
    for (int c = 0; c < kNumOpCodes; ++c) ngram[p][c] += other.ngram[p][c];
  }
  for (int c = 0; c < kNumOpCodes; ++c) unigram[c] += other.unigram[c];
  for (const auto& [bucket, counts] : other.profile) {
    std::array<uint64_t, kNumOpCodes>& mine = profile[bucket];
    for (int c = 0; c < kNumOpCodes; ++c) mine[c] += counts[c];
  }
  programs_mined += other.programs_mined;
  operations_mined += other.operations_mined;
}

void MineProgram(const Table& input, const Table& goal, const Program& truth,
                 GuidanceModel* model) {
  ++model->programs_mined;
  Table state = input;
  int prev = GuidanceModel::kStartToken;
  for (const Operation& operation : truth.operations()) {
    const int code = static_cast<int>(operation.op);
    ++model->ngram[prev][code];
    ++model->unigram[code];
    ++model->profile[ProfileBucket(state, goal)][code];
    ++model->operations_mined;
    prev = code;
    Result<Table> next = ApplyOperation(state, operation);
    if (!next.ok()) break;  // Credit only the replayable prefix.
    state = std::move(next).value();
  }
}

bool MineSolved(const Table& input, const Table& goal,
                const SearchOptions& options, GuidanceModel* model) {
  SearchOptions exact = options;
  exact.guidance = nullptr;
  SearchResult result = SynthesizeProgram(input, goal, exact);
  if (!result.found) return false;
  MineProgram(input, goal, result.program, model);
  return true;
}

GuidanceModel MineScenarios(const std::vector<Scenario>& scenarios) {
  GuidanceModel model;
  for (const Scenario& scenario : scenarios) {
    if (!scenario.truth().has_value()) continue;
    MineProgram(scenario.FullInput(), scenario.FullOutput(),
                *scenario.truth(), &model);
  }
  return model;
}

}  // namespace foofah
