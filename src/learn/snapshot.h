#ifndef FOOFAH_LEARN_SNAPSHOT_H_
#define FOOFAH_LEARN_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "learn/stats.h"
#include "util/status.h"

namespace foofah {

/// Everything a warm replica needs at boot, in one artifact: the mined
/// guidance model, plus optional persisted caches — heuristic memo
/// entries (state/goal hash -> TED estimate) and solved program results
/// (example-pair fingerprint -> program script) — so a freshly started
/// SynthesisService answers repeat traffic without re-searching and
/// starts its first searches with a hot memo.
struct GuidanceSnapshot {
  /// One pre-warmed HeuristicCache entry, exactly the Insert() tuple.
  struct HeuristicEntry {
    uint64_t state_hash = 0;
    uint64_t goal_hash = 0;
    uint64_t checksum = 0;  ///< State shape fingerprint (collision guard).
    double estimate = 0;

    friend bool operator==(const HeuristicEntry& a, const HeuristicEntry& b) {
      return a.state_hash == b.state_hash && a.goal_hash == b.goal_hash &&
             a.checksum == b.checksum && a.estimate == b.estimate;
    }
  };

  /// One solved example pair: the four-hash fingerprint of (input,
  /// output) and the program script that solved it. Consumers must
  /// re-validate by executing the parsed script against the actual
  /// request tables before serving (hashes gate the lookup, replay
  /// proves it).
  struct ProgramEntry {
    uint64_t input_hash = 0;
    uint64_t input_shape = 0;
    uint64_t output_hash = 0;
    uint64_t output_shape = 0;
    std::string script;

    friend bool operator==(const ProgramEntry& a, const ProgramEntry& b) {
      return a.input_hash == b.input_hash && a.input_shape == b.input_shape &&
             a.output_hash == b.output_hash &&
             a.output_shape == b.output_shape && a.script == b.script;
    }
  };

  GuidanceModel model;
  std::vector<HeuristicEntry> heuristic_entries;
  std::vector<ProgramEntry> program_entries;

  friend bool operator==(const GuidanceSnapshot& a, const GuidanceSnapshot& b) {
    return a.model == b.model && a.heuristic_entries == b.heuristic_entries &&
           a.program_entries == b.program_entries;
  }
};

/// Current snapshot format version. Loaders reject any other version with
/// kInvalidArgument — priors silently misread across format changes would
/// steer every replica's search, so version skew is a hard error, never a
/// best-effort parse.
inline constexpr int kGuidanceSnapshotVersion = 1;

/// Renders the snapshot in the versioned text format:
///
///   foofah-guidance-snapshot v1
///   checksum <16-hex FNV-1a-64 of everything after this line>
///   meta ...
///   ngram <prev-op-name|^> <op-name> <count>
///   ...
///
/// Deterministic: entries are emitted in sorted order and operators are
/// identified by their stable surface-syntax NAMES (OpCodeName), so the
/// bytes are a pure function of the snapshot value — equal snapshots
/// serialize identically on every platform, which the mine->save->load->
/// save byte-identity test pins down.
std::string SerializeGuidanceSnapshot(const GuidanceSnapshot& snapshot);

/// Parses `text`. Typed failures: version mismatch -> kInvalidArgument;
/// bad magic, checksum mismatch (any payload tampering), malformed lines
/// or unknown operator names -> kParseError.
Result<GuidanceSnapshot> ParseGuidanceSnapshot(std::string_view text);

/// Serialize + atomic-ish write (temp file + rename) to `path`.
Status SaveGuidanceSnapshot(const GuidanceSnapshot& snapshot,
                            const std::string& path);

/// Read + parse. A missing/unreadable file -> kNotFound (callers that
/// treat guidance as optional, like service boot, degrade on that code);
/// content failures keep ParseGuidanceSnapshot's typed codes.
Result<GuidanceSnapshot> LoadGuidanceSnapshot(const std::string& path);

}  // namespace foofah

#endif  // FOOFAH_LEARN_SNAPSHOT_H_
