file(REMOVE_RECURSE
  "CMakeFiles/csv_cleanup.dir/csv_cleanup.cpp.o"
  "CMakeFiles/csv_cleanup.dir/csv_cleanup.cpp.o.d"
  "csv_cleanup"
  "csv_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
