# Empty compiler generated dependencies file for csv_cleanup.
# This may be replaced when dependencies are built.
