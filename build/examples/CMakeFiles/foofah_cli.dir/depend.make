# Empty dependencies file for foofah_cli.
# This may be replaced when dependencies are built.
