file(REMOVE_RECURSE
  "CMakeFiles/foofah_cli.dir/foofah_cli.cpp.o"
  "CMakeFiles/foofah_cli.dir/foofah_cli.cpp.o.d"
  "foofah_cli"
  "foofah_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foofah_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
