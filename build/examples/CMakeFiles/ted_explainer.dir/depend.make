# Empty dependencies file for ted_explainer.
# This may be replaced when dependencies are built.
