file(REMOVE_RECURSE
  "CMakeFiles/ted_explainer.dir/ted_explainer.cpp.o"
  "CMakeFiles/ted_explainer.dir/ted_explainer.cpp.o.d"
  "ted_explainer"
  "ted_explainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ted_explainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
