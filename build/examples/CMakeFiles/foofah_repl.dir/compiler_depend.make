# Empty compiler generated dependencies file for foofah_repl.
# This may be replaced when dependencies are built.
