file(REMOVE_RECURSE
  "CMakeFiles/foofah_repl.dir/foofah_repl.cpp.o"
  "CMakeFiles/foofah_repl.dir/foofah_repl.cpp.o.d"
  "foofah_repl"
  "foofah_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foofah_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
