# Empty compiler generated dependencies file for directory_listing.
# This may be replaced when dependencies are built.
