file(REMOVE_RECURSE
  "CMakeFiles/directory_listing.dir/directory_listing.cpp.o"
  "CMakeFiles/directory_listing.dir/directory_listing.cpp.o.d"
  "directory_listing"
  "directory_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
