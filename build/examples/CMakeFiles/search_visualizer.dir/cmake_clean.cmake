file(REMOVE_RECURSE
  "CMakeFiles/search_visualizer.dir/search_visualizer.cpp.o"
  "CMakeFiles/search_visualizer.dir/search_visualizer.cpp.o.d"
  "search_visualizer"
  "search_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
