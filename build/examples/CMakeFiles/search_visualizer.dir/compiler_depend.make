# Empty compiler generated dependencies file for search_visualizer.
# This may be replaced when dependencies are built.
