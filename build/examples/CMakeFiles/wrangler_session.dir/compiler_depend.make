# Empty compiler generated dependencies file for wrangler_session.
# This may be replaced when dependencies are built.
