file(REMOVE_RECURSE
  "CMakeFiles/wrangler_session.dir/wrangler_session.cpp.o"
  "CMakeFiles/wrangler_session.dir/wrangler_session.cpp.o.d"
  "wrangler_session"
  "wrangler_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrangler_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
