file(REMOVE_RECURSE
  "CMakeFiles/name_folding.dir/name_folding.cpp.o"
  "CMakeFiles/name_folding.dir/name_folding.cpp.o.d"
  "name_folding"
  "name_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
