# Empty dependencies file for name_folding.
# This may be replaced when dependencies are built.
