# Empty dependencies file for pattern_inference.
# This may be replaced when dependencies are built.
