file(REMOVE_RECURSE
  "CMakeFiles/pattern_inference.dir/pattern_inference.cpp.o"
  "CMakeFiles/pattern_inference.dir/pattern_inference.cpp.o.d"
  "pattern_inference"
  "pattern_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
