# Empty dependencies file for typo_tolerance.
# This may be replaced when dependencies are built.
