file(REMOVE_RECURSE
  "CMakeFiles/typo_tolerance.dir/typo_tolerance.cpp.o"
  "CMakeFiles/typo_tolerance.dir/typo_tolerance.cpp.o.d"
  "typo_tolerance"
  "typo_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typo_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
