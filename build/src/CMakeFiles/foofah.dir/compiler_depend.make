# Empty compiler generated dependencies file for foofah.
# This may be replaced when dependencies are built.
