file(REMOVE_RECURSE
  "libfoofah.a"
)
