
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/progfromex.cc" "src/CMakeFiles/foofah.dir/baselines/progfromex.cc.o" "gcc" "src/CMakeFiles/foofah.dir/baselines/progfromex.cc.o.d"
  "/root/repo/src/baselines/wrangler_effort.cc" "src/CMakeFiles/foofah.dir/baselines/wrangler_effort.cc.o" "gcc" "src/CMakeFiles/foofah.dir/baselines/wrangler_effort.cc.o.d"
  "/root/repo/src/core/approximate.cc" "src/CMakeFiles/foofah.dir/core/approximate.cc.o" "gcc" "src/CMakeFiles/foofah.dir/core/approximate.cc.o.d"
  "/root/repo/src/core/diagnose.cc" "src/CMakeFiles/foofah.dir/core/diagnose.cc.o" "gcc" "src/CMakeFiles/foofah.dir/core/diagnose.cc.o.d"
  "/root/repo/src/core/driver.cc" "src/CMakeFiles/foofah.dir/core/driver.cc.o" "gcc" "src/CMakeFiles/foofah.dir/core/driver.cc.o.d"
  "/root/repo/src/core/synthesizer.cc" "src/CMakeFiles/foofah.dir/core/synthesizer.cc.o" "gcc" "src/CMakeFiles/foofah.dir/core/synthesizer.cc.o.d"
  "/root/repo/src/heuristic/edit_op.cc" "src/CMakeFiles/foofah.dir/heuristic/edit_op.cc.o" "gcc" "src/CMakeFiles/foofah.dir/heuristic/edit_op.cc.o.d"
  "/root/repo/src/heuristic/exact_ted.cc" "src/CMakeFiles/foofah.dir/heuristic/exact_ted.cc.o" "gcc" "src/CMakeFiles/foofah.dir/heuristic/exact_ted.cc.o.d"
  "/root/repo/src/heuristic/heuristic.cc" "src/CMakeFiles/foofah.dir/heuristic/heuristic.cc.o" "gcc" "src/CMakeFiles/foofah.dir/heuristic/heuristic.cc.o.d"
  "/root/repo/src/heuristic/naive_heuristic.cc" "src/CMakeFiles/foofah.dir/heuristic/naive_heuristic.cc.o" "gcc" "src/CMakeFiles/foofah.dir/heuristic/naive_heuristic.cc.o.d"
  "/root/repo/src/heuristic/ted.cc" "src/CMakeFiles/foofah.dir/heuristic/ted.cc.o" "gcc" "src/CMakeFiles/foofah.dir/heuristic/ted.cc.o.d"
  "/root/repo/src/heuristic/ted_batch.cc" "src/CMakeFiles/foofah.dir/heuristic/ted_batch.cc.o" "gcc" "src/CMakeFiles/foofah.dir/heuristic/ted_batch.cc.o.d"
  "/root/repo/src/ops/enumerate.cc" "src/CMakeFiles/foofah.dir/ops/enumerate.cc.o" "gcc" "src/CMakeFiles/foofah.dir/ops/enumerate.cc.o.d"
  "/root/repo/src/ops/operation.cc" "src/CMakeFiles/foofah.dir/ops/operation.cc.o" "gcc" "src/CMakeFiles/foofah.dir/ops/operation.cc.o.d"
  "/root/repo/src/ops/operators.cc" "src/CMakeFiles/foofah.dir/ops/operators.cc.o" "gcc" "src/CMakeFiles/foofah.dir/ops/operators.cc.o.d"
  "/root/repo/src/ops/registry.cc" "src/CMakeFiles/foofah.dir/ops/registry.cc.o" "gcc" "src/CMakeFiles/foofah.dir/ops/registry.cc.o.d"
  "/root/repo/src/profile/structure.cc" "src/CMakeFiles/foofah.dir/profile/structure.cc.o" "gcc" "src/CMakeFiles/foofah.dir/profile/structure.cc.o.d"
  "/root/repo/src/program/describe.cc" "src/CMakeFiles/foofah.dir/program/describe.cc.o" "gcc" "src/CMakeFiles/foofah.dir/program/describe.cc.o.d"
  "/root/repo/src/program/minimize.cc" "src/CMakeFiles/foofah.dir/program/minimize.cc.o" "gcc" "src/CMakeFiles/foofah.dir/program/minimize.cc.o.d"
  "/root/repo/src/program/parser.cc" "src/CMakeFiles/foofah.dir/program/parser.cc.o" "gcc" "src/CMakeFiles/foofah.dir/program/parser.cc.o.d"
  "/root/repo/src/program/program.cc" "src/CMakeFiles/foofah.dir/program/program.cc.o" "gcc" "src/CMakeFiles/foofah.dir/program/program.cc.o.d"
  "/root/repo/src/scenarios/bundle.cc" "src/CMakeFiles/foofah.dir/scenarios/bundle.cc.o" "gcc" "src/CMakeFiles/foofah.dir/scenarios/bundle.cc.o.d"
  "/root/repo/src/scenarios/corpus.cc" "src/CMakeFiles/foofah.dir/scenarios/corpus.cc.o" "gcc" "src/CMakeFiles/foofah.dir/scenarios/corpus.cc.o.d"
  "/root/repo/src/scenarios/scenario.cc" "src/CMakeFiles/foofah.dir/scenarios/scenario.cc.o" "gcc" "src/CMakeFiles/foofah.dir/scenarios/scenario.cc.o.d"
  "/root/repo/src/search/pruning.cc" "src/CMakeFiles/foofah.dir/search/pruning.cc.o" "gcc" "src/CMakeFiles/foofah.dir/search/pruning.cc.o.d"
  "/root/repo/src/search/search.cc" "src/CMakeFiles/foofah.dir/search/search.cc.o" "gcc" "src/CMakeFiles/foofah.dir/search/search.cc.o.d"
  "/root/repo/src/search/trace.cc" "src/CMakeFiles/foofah.dir/search/trace.cc.o" "gcc" "src/CMakeFiles/foofah.dir/search/trace.cc.o.d"
  "/root/repo/src/table/csv.cc" "src/CMakeFiles/foofah.dir/table/csv.cc.o" "gcc" "src/CMakeFiles/foofah.dir/table/csv.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/foofah.dir/table/table.cc.o" "gcc" "src/CMakeFiles/foofah.dir/table/table.cc.o.d"
  "/root/repo/src/table/table_diff.cc" "src/CMakeFiles/foofah.dir/table/table_diff.cc.o" "gcc" "src/CMakeFiles/foofah.dir/table/table_diff.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/foofah.dir/util/status.cc.o" "gcc" "src/CMakeFiles/foofah.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/foofah.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/foofah.dir/util/string_util.cc.o.d"
  "/root/repo/src/wrangler/session.cc" "src/CMakeFiles/foofah.dir/wrangler/session.cc.o" "gcc" "src/CMakeFiles/foofah.dir/wrangler/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
