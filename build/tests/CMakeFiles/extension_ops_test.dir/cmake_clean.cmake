file(REMOVE_RECURSE
  "CMakeFiles/extension_ops_test.dir/extension_ops_test.cc.o"
  "CMakeFiles/extension_ops_test.dir/extension_ops_test.cc.o.d"
  "extension_ops_test"
  "extension_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
