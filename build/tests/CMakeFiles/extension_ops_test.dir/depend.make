# Empty dependencies file for extension_ops_test.
# This may be replaced when dependencies are built.
