file(REMOVE_RECURSE
  "CMakeFiles/exact_ted_test.dir/exact_ted_test.cc.o"
  "CMakeFiles/exact_ted_test.dir/exact_ted_test.cc.o.d"
  "exact_ted_test"
  "exact_ted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_ted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
