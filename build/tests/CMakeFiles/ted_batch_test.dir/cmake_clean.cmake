file(REMOVE_RECURSE
  "CMakeFiles/ted_batch_test.dir/ted_batch_test.cc.o"
  "CMakeFiles/ted_batch_test.dir/ted_batch_test.cc.o.d"
  "ted_batch_test"
  "ted_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ted_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
