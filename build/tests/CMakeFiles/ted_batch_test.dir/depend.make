# Empty dependencies file for ted_batch_test.
# This may be replaced when dependencies are built.
