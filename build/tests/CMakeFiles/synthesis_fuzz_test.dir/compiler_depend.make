# Empty compiler generated dependencies file for synthesis_fuzz_test.
# This may be replaced when dependencies are built.
