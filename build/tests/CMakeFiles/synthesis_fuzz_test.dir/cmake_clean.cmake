file(REMOVE_RECURSE
  "CMakeFiles/synthesis_fuzz_test.dir/synthesis_fuzz_test.cc.o"
  "CMakeFiles/synthesis_fuzz_test.dir/synthesis_fuzz_test.cc.o.d"
  "synthesis_fuzz_test"
  "synthesis_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
