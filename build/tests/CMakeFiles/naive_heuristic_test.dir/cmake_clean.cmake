file(REMOVE_RECURSE
  "CMakeFiles/naive_heuristic_test.dir/naive_heuristic_test.cc.o"
  "CMakeFiles/naive_heuristic_test.dir/naive_heuristic_test.cc.o.d"
  "naive_heuristic_test"
  "naive_heuristic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_heuristic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
