# Empty compiler generated dependencies file for table_diff_test.
# This may be replaced when dependencies are built.
