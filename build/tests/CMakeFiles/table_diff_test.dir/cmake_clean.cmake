file(REMOVE_RECURSE
  "CMakeFiles/table_diff_test.dir/table_diff_test.cc.o"
  "CMakeFiles/table_diff_test.dir/table_diff_test.cc.o.d"
  "table_diff_test"
  "table_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
