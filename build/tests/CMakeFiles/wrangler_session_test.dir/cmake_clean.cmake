file(REMOVE_RECURSE
  "CMakeFiles/wrangler_session_test.dir/wrangler_session_test.cc.o"
  "CMakeFiles/wrangler_session_test.dir/wrangler_session_test.cc.o.d"
  "wrangler_session_test"
  "wrangler_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrangler_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
