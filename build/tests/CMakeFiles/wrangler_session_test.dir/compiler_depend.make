# Empty compiler generated dependencies file for wrangler_session_test.
# This may be replaced when dependencies are built.
