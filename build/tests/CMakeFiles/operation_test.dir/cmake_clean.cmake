file(REMOVE_RECURSE
  "CMakeFiles/operation_test.dir/operation_test.cc.o"
  "CMakeFiles/operation_test.dir/operation_test.cc.o.d"
  "operation_test"
  "operation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
