# Empty dependencies file for operation_test.
# This may be replaced when dependencies are built.
