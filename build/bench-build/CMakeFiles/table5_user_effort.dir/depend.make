# Empty dependencies file for table5_user_effort.
# This may be replaced when dependencies are built.
