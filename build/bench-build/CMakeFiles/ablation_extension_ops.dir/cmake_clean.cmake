file(REMOVE_RECURSE
  "../bench/ablation_extension_ops"
  "../bench/ablation_extension_ops.pdb"
  "CMakeFiles/ablation_extension_ops.dir/ablation_extension_ops.cc.o"
  "CMakeFiles/ablation_extension_ops.dir/ablation_extension_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extension_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
