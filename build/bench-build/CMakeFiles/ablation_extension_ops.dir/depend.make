# Empty dependencies file for ablation_extension_ops.
# This may be replaced when dependencies are built.
