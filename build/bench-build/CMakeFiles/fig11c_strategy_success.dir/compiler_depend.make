# Empty compiler generated dependencies file for fig11c_strategy_success.
# This may be replaced when dependencies are built.
