file(REMOVE_RECURSE
  "../bench/fig11c_strategy_success"
  "../bench/fig11c_strategy_success.pdb"
  "CMakeFiles/fig11c_strategy_success.dir/fig11c_strategy_success.cc.o"
  "CMakeFiles/fig11c_strategy_success.dir/fig11c_strategy_success.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_strategy_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
