# Empty dependencies file for table6_system_comparison.
# This may be replaced when dependencies are built.
