file(REMOVE_RECURSE
  "../bench/table6_system_comparison"
  "../bench/table6_system_comparison.pdb"
  "CMakeFiles/table6_system_comparison.dir/table6_system_comparison.cc.o"
  "CMakeFiles/table6_system_comparison.dir/table6_system_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_system_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
