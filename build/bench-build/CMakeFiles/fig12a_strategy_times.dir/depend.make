# Empty dependencies file for fig12a_strategy_times.
# This may be replaced when dependencies are built.
