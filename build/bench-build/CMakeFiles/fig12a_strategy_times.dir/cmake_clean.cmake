file(REMOVE_RECURSE
  "../bench/fig12a_strategy_times"
  "../bench/fig12a_strategy_times.pdb"
  "CMakeFiles/fig12a_strategy_times.dir/fig12a_strategy_times.cc.o"
  "CMakeFiles/fig12a_strategy_times.dir/fig12a_strategy_times.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_strategy_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
