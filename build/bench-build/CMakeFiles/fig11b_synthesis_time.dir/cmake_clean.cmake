file(REMOVE_RECURSE
  "../bench/fig11b_synthesis_time"
  "../bench/fig11b_synthesis_time.pdb"
  "CMakeFiles/fig11b_synthesis_time.dir/fig11b_synthesis_time.cc.o"
  "CMakeFiles/fig11b_synthesis_time.dir/fig11b_synthesis_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_synthesis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
