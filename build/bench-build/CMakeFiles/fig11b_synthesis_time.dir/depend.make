# Empty dependencies file for fig11b_synthesis_time.
# This may be replaced when dependencies are built.
