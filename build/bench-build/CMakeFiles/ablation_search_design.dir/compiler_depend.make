# Empty compiler generated dependencies file for ablation_search_design.
# This may be replaced when dependencies are built.
