file(REMOVE_RECURSE
  "../bench/ablation_search_design"
  "../bench/ablation_search_design.pdb"
  "CMakeFiles/ablation_search_design.dir/ablation_search_design.cc.o"
  "CMakeFiles/ablation_search_design.dir/ablation_search_design.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
