# Empty compiler generated dependencies file for fig11a_records_required.
# This may be replaced when dependencies are built.
