file(REMOVE_RECURSE
  "../bench/fig11a_records_required"
  "../bench/fig11a_records_required.pdb"
  "CMakeFiles/fig11a_records_required.dir/fig11a_records_required.cc.o"
  "CMakeFiles/fig11a_records_required.dir/fig11a_records_required.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_records_required.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
