# Empty dependencies file for fig12c_wrap_operators.
# This may be replaced when dependencies are built.
