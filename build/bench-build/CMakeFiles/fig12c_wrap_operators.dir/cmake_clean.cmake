file(REMOVE_RECURSE
  "../bench/fig12c_wrap_operators"
  "../bench/fig12c_wrap_operators.pdb"
  "CMakeFiles/fig12c_wrap_operators.dir/fig12c_wrap_operators.cc.o"
  "CMakeFiles/fig12c_wrap_operators.dir/fig12c_wrap_operators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12c_wrap_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
