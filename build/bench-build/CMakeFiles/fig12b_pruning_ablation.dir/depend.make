# Empty dependencies file for fig12b_pruning_ablation.
# This may be replaced when dependencies are built.
