file(REMOVE_RECURSE
  "../bench/fig12b_pruning_ablation"
  "../bench/fig12b_pruning_ablation.pdb"
  "CMakeFiles/fig12b_pruning_ablation.dir/fig12b_pruning_ablation.cc.o"
  "CMakeFiles/fig12b_pruning_ablation.dir/fig12b_pruning_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_pruning_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
